"""Differential and unit suite for the SMT-backed proving stack.

The solver-backed checkers are held to the same bar as every other
checker: a *conclusive* verdict that contradicts the exhaustive engine on
a fully explored state space is a soundness bug, never a tuning issue.
Because the real ``z3`` binary is optional, most of this module drives the
engines through a **fake solver**: a brute-force SMT-LIB interpreter
(complete for the finite-domain encodings the engines emit) written to a
temp file and injected via ``REPRO_SMT_Z3``.  That exercises the entire
pipeline -- encoder text, pipe protocol, model decoding, trace replay --
with no external dependency.  A small z3-gated tier on top re-runs the
differential against the real solver and proves a net beyond the
exhaustive horizon, matching the CI solver-matrix jobs.
"""

import pathlib

import pytest

from repro.campaign.cache import options_digest
from repro.campaign.jobs import VerificationJob, build_pipeline_model
from repro.dfs.examples import conditional_comp_dfs, linear_pipeline, token_ring
from repro.dfs.translation import to_petri_net
from repro.exceptions import (
    SolverError,
    SolverTimeoutError,
    SolverUnavailableError,
)
from repro.petri.invariants import (
    compute_semiflows,
    is_siphon,
    is_trap,
    maximal_trap_within,
    minimal_siphons,
    siphon_trap_certificate,
)
from repro.petri.net import PetriNet
from repro.petri.reachability import build_reachability_graph
from repro.reach.parser import parse
from repro.smt.encoder import SmtEncoder
from repro.smt.sexpr import (
    atom_name,
    balanced,
    evaluate,
    parse_all,
    serialize,
    tokenize,
)
from repro.smt.sexpr import parse as parse_sexpr
from repro.smt.solver import (
    PipeSolver,
    require_solver,
    solver_available,
    solver_binary,
    solver_fingerprint,
    solver_respawns,
)
from repro.verification.checkers import (
    CHECKERS,
    CheckerContext,
    DeadlockQuery,
    ReachQuery,
    SafenessQuery,
    create_checker,
)

SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

SMT_CHECKERS = ("bmc", "kinduction", "ic3")

#: A brute-force SMT-LIB solver speaking the exact protocol subset
#: :class:`PipeSolver` emits.  Domains: Bool variables range over
#: {false, true}; Int selectors (``t@k``) over 0..max-literal; every other
#: Int over {0, 1} -- complete for the ``safe=True`` encodings used below,
#: where place variables carry asserted 0/1 bounds anyway.  Assertions are
#: checked as soon as their last variable is assigned, so the search
#: prunes instead of enumerating the full cross product.
FAKE_SOLVER = '''#!/usr/bin/env python3
import sys

sys.path.insert(0, "@SRC@")
from repro.smt.sexpr import atom_name, evaluate, parse_all, serialize


def max_literal(expression, best=1):
    if isinstance(expression, str):
        try:
            return max(best, abs(int(expression)))
        except ValueError:
            return best
    for part in expression:
        best = max_literal(part, best)
    return best


def variables_of(expression, found):
    if isinstance(expression, str):
        found.add(atom_name(expression))
    else:
        for part in expression:
            variables_of(part, found)
    return found


def solve(names, sorts, assertions):
    top = 1
    for assertion in assertions:
        top = max_literal(assertion, top)
    index = dict((name, i) for i, name in enumerate(names))
    domains = []
    for name, sort in zip(names, sorts):
        if sort == "Bool":
            domains.append((False, True))
        elif name.startswith("t@"):
            domains.append(tuple(range(top + 1)))
        else:
            domains.append((0, 1))
    ground = []
    by_level = [[] for _ in names]
    for assertion in assertions:
        levels = [index[v] for v in variables_of(assertion, set())
                  if v in index]
        (by_level[max(levels)] if levels else ground).append(assertion)
    env = {}
    if not all(evaluate(a, env) for a in ground):
        return None

    def descend(i):
        if i == len(names):
            return True
        for value in domains[i]:
            env[names[i]] = value
            if all(evaluate(a, env) for a in by_level[i]) and descend(i + 1):
                return True
        del env[names[i]]
        return False

    return dict(env) if descend(0) else None


def main():
    frames = [[]]
    decls = [[]]
    model = None
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        for command in parse_all(line):
            head = atom_name(command[0])
            if head == "declare-const":
                decls[-1].append(
                    (atom_name(command[1]), atom_name(command[2])))
            elif head == "assert":
                frames[-1].append(command[1])
            elif head == "push":
                frames.append([])
                decls.append([])
            elif head == "pop":
                frames.pop()
                decls.pop()
            elif head in ("check-sat", "check-sat-assuming"):
                assertions = [a for level in frames for a in level]
                if head == "check-sat-assuming":
                    assertions = assertions + list(command[1])
                names, sorts = [], []
                for level in decls:
                    for name, sort in level:
                        names.append(name)
                        sorts.append(sort)
                model = solve(names, sorts, assertions)
                print("sat" if model is not None else "unsat", flush=True)
            elif head == "get-value":
                parts = []
                for term in command[1]:
                    value = (model or {}).get(atom_name(term), 0)
                    if value is True:
                        value = "true"
                    elif value is False:
                        value = "false"
                    parts.append("({} {})".format(serialize(term), value))
                print("({})".format(" ".join(parts)), flush=True)
            elif head == "exit":
                return


main()
'''


# -- shared nets --------------------------------------------------------------


def pair_ring():
    """A two-state cycle over complementary place pairs: a <-> b.

    Deadlock-free, 1-safe, invariant-complete (the semiflows pin every
    reachable-looking assignment), so IC3 proves with zero learned clauses.
    """
    net = PetriNet("pair_ring")
    for place, tokens in (("a", 1), ("na", 0), ("b", 0), ("nb", 1)):
        net.add_place(place, tokens=tokens)
    net.add_transition("t_ab")
    net.add_transition("t_ba")
    for src, dst in (("a", "t_ab"), ("nb", "t_ab"), ("t_ab", "na"),
                     ("t_ab", "b"), ("b", "t_ba"), ("na", "t_ba"),
                     ("t_ba", "nb"), ("t_ba", "a")):
        net.add_arc(src, dst)
    return net


def latch_ring():
    """pair_ring with a one-shot latch ``c``: consumes ``nc`` on the way out.

    Reaches a genuine deadlock in two steps (t_ab, t_ba), and the
    unreachable-but-invariant-consistent marking ``na & nc`` forces IC3 to
    learn a real clause rather than coast on the semiflows.
    """
    net = PetriNet("latch_ring")
    for place, tokens in (("a", 1), ("na", 0), ("b", 0), ("nb", 1),
                          ("c", 0), ("nc", 1)):
        net.add_place(place, tokens=tokens)
    net.add_transition("t_ab")
    net.add_transition("t_ba")
    for src, dst in (("a", "t_ab"), ("nb", "t_ab"), ("nc", "t_ab"),
                     ("t_ab", "na"), ("t_ab", "b"), ("t_ab", "c"),
                     ("b", "t_ba"), ("na", "t_ba"), ("t_ba", "nb"),
                     ("t_ba", "a")):
        net.add_arc(src, dst)
    return net


def wide_rings(count):
    """*count* independent pair_ring components: 2**count reachable states.

    The state space is exponential in *count* while the encoding stays
    linear, so induction closes instantly on a net the exhaustive engine
    cannot finish -- the beyond-the-horizon family of the z3 tier.
    """
    net = PetriNet("wide_rings_{}".format(count))
    for i in range(count):
        for place, tokens in (("a{}", 1), ("na{}", 0), ("b{}", 0),
                              ("nb{}", 1)):
            net.add_place(place.format(i), tokens=tokens)
        ab, ba = "t_ab{}".format(i), "t_ba{}".format(i)
        net.add_transition(ab)
        net.add_transition(ba)
        for src, dst in (("a{}", ab), ("nb{}", ab), (ab, "na{}"),
                         (ab, "b{}"), ("b{}", ba), ("na{}", ba),
                         (ba, "nb{}"), (ba, "a{}")):
            src = src.format(i) if isinstance(src, str) and "{}" in src else src
            dst = dst.format(i) if isinstance(dst, str) and "{}" in dst else dst
            net.add_arc(src, dst)
    return net


def marking_env(encoder, marking, step):
    """The sexpr-evaluator environment of *marking* at unrolling *step*."""
    return {"{}@{}".format(name, step): marking[name]
            for name in encoder.place_names}


def holds_all(formulas, env):
    return all(evaluate(parse_sexpr(formula), env) for formula in formulas)


# -- fixtures -----------------------------------------------------------------


@pytest.fixture(scope="session")
def fake_solver_script(tmp_path_factory):
    path = tmp_path_factory.mktemp("fakesmt") / "fake_z3.py"
    path.write_text(FAKE_SOLVER.replace("@SRC@", str(SRC_DIR)))
    path.chmod(0o755)
    return str(path)


@pytest.fixture
def fake_solver(fake_solver_script, monkeypatch):
    monkeypatch.delenv("REPRO_NO_Z3", raising=False)
    monkeypatch.setenv("REPRO_SMT_Z3", fake_solver_script)
    return fake_solver_script


@pytest.fixture
def no_solver(monkeypatch):
    monkeypatch.setenv("REPRO_NO_Z3", "1")


# -- the s-expression layer ---------------------------------------------------


class TestSexpr:
    def test_parse_serialize_round_trip(self):
        text = "(assert (= |p@0| (+ 1 (ite (= t 0) -1 0))))"
        assert serialize(parse_sexpr(text)) == text

    def test_parse_all_splits_top_level_forms(self):
        forms = parse_all("(push) (assert (> x 0)) (check-sat)")
        assert [atom_name(form[0]) for form in forms] == \
            ["push", "assert", "check-sat"]

    def test_balanced_tracks_depth(self):
        assert balanced("(and (= a 1)") is False
        assert balanced("(and (= a 1))") is True

    def test_tokenize_handles_piped_symbols(self):
        assert tokenize("(= |p@0| 1)") == ["(", "=", "|p@0|", "1", ")"]
        assert atom_name("|p@0|") == "p@0"

    def test_evaluate_core_theory(self):
        env = {"a": 1, "b": 0, "f": False}
        cases = (
            ("(and (>= a 1) (not (>= b 1)))", True),
            ("(or f (= (+ a b) 1))", True),
            ("(=> (= a 1) (distinct a b))", True),
            ("(ite (= b 0) (* 2 a) (- a)) ", None),
        )
        for text, expected in cases[:3]:
            assert evaluate(parse_sexpr(text), env) is expected
        assert evaluate(parse_sexpr(cases[3][0]), env) == 2
        assert evaluate(parse_sexpr("(- 5 2 1)"), env) == 2

    def test_unknown_symbol_is_a_loud_error(self):
        with pytest.raises(SolverError):
            evaluate(parse_sexpr("(frob a 1)"), {"a": 1})


# -- the encoder, differentially against the explored graph -------------------


class TestEncoder:
    @pytest.fixture(scope="class")
    def explored(self):
        net = to_petri_net(conditional_comp_dfs(comp_stages=1))
        graph = build_reachability_graph(net)
        encoder = SmtEncoder(net, safe=True)
        return net, graph, encoder

    def test_step_relation_accepts_exactly_the_graph_edges(self, explored):
        net, graph, encoder = explored
        formulas = encoder.step_formulas(0)
        checked = 0
        for marking in graph.states:
            for transition, successor in graph.successors(marking):
                env = marking_env(encoder, marking, 0)
                env.update(marking_env(encoder, successor, 1))
                env["t@0"] = encoder.transition_names.index(transition)
                assert holds_all(formulas, env)
                # Corrupting any single place of the successor must break
                # the functional step relation.
                broken = dict(env)
                victim = encoder.place_names[0] + "@1"
                broken[victim] = 1 - broken[victim]
                assert not holds_all(formulas, broken)
                checked += 1
        assert checked > 10

    def test_disabled_selectors_are_rejected(self, explored):
        net, graph, encoder = explored
        formulas = encoder.step_formulas(0)
        marking = net.initial_marking()
        enabled = set(net.enabled_transitions(marking))
        disabled = [name for name in encoder.transition_names
                    if name not in enabled]
        env = marking_env(encoder, marking, 0)
        env.update(marking_env(encoder, marking, 1))
        env["t@0"] = encoder.transition_names.index(disabled[0])
        assert not holds_all(formulas, env)

    def test_deadlock_formula_matches_enabledness(self, explored):
        net, graph, encoder = explored
        formula = parse_sexpr(encoder.deadlock(0))
        for marking in graph.states:
            expected = not net.enabled_transitions(marking)
            assert evaluate(formula, marking_env(encoder, marking, 0)) \
                is expected

    def test_predicates_match_the_reach_evaluator(self, explored):
        net, graph, encoder = explored
        place_a, place_b = sorted(net.places)[:2]
        texts = (
            '$"{}"'.format(place_a),
            '!$"{}" | $"{}"'.format(place_a, place_b),
            '$"{}" -> $"{}"'.format(place_b, place_a),
            "tokens({}) >= 1 & tokens({}) != 1".format(place_a, place_b),
        )
        for text in texts:
            expression = parse(text)
            formula = parse_sexpr(encoder.predicate(expression, 0))
            for marking in graph.states:
                assert evaluate(formula, marking_env(encoder, marking, 0)) \
                    is bool(expression.evaluate(marking))

    def test_invariants_hold_on_every_reachable_marking(self, explored):
        net, graph, encoder = explored
        semiflows = compute_semiflows(net)
        assert semiflows
        formulas = encoder.invariants(semiflows, 0)
        for marking in graph.states:
            assert holds_all(formulas, marking_env(encoder, marking, 0))

    def test_marking_round_trips_through_a_model(self, explored):
        net, graph, encoder = explored
        marking = net.initial_marking()
        values = marking_env(encoder, marking, 0)
        decoded = encoder.marking_from_model(values, step=0)
        assert decoded == {name: marking[name]
                           for name in encoder.place_names}
        assert encoder.marking_from_model({}, step=0) is None

    def test_safe_bounds_and_excess_tokens(self, explored):
        net, graph, encoder = explored
        env = marking_env(encoder, net.initial_marking(), 0)
        assert holds_all(encoder.marking_bounds(0), env)
        excess = parse_sexpr(encoder.excess_tokens(1, 0))
        assert evaluate(excess, env) is False
        env[encoder.place_names[0] + "@0"] = 2
        assert evaluate(excess, env) is True


# -- the pipe protocol: crash and timeout containment -------------------------


class TestPipeSolver:
    @staticmethod
    def script(tmp_path, body):
        path = tmp_path / "solver.py"
        path.write_text("#!/usr/bin/env python3\n" + body)
        path.chmod(0o755)
        return str(path)

    def test_canned_answers_flow_through(self, tmp_path):
        binary = self.script(tmp_path, (
            "import sys\n"
            "for line in sys.stdin:\n"
            "    if 'check-sat' in line: print('sat', flush=True)\n"
            "    elif 'get-value' in line:\n"
            "        print('((|p@0| 1) (|t@0| 0))', flush=True)\n"
            "    elif 'exit' in line: break\n"))
        with PipeSolver(binary=binary) as solver:
            assert solver.check_sat(timeout=10) == "sat"
            assert solver.get_values(["|p@0|", "|t@0|"], timeout=10) == \
                {"p@0": 1, "t@0": 0}

    def test_solver_crash_is_a_solver_error(self, tmp_path):
        binary = self.script(tmp_path, "import sys; sys.exit(3)\n")
        solver = PipeSolver(binary=binary)
        with pytest.raises(SolverError):
            solver.check_sat(timeout=5)
        solver.close()

    def test_hung_solver_times_out_and_is_killed(self, tmp_path):
        binary = self.script(tmp_path, (
            "import sys, time\n"
            "for line in sys.stdin:\n"
            "    time.sleep(60)\n"))
        solver = PipeSolver(binary=binary)
        with pytest.raises(SolverTimeoutError):
            solver.check_sat(timeout=0.3)
        solver.close()
        assert not solver.alive

    def test_garbage_answer_is_a_solver_error(self, tmp_path):
        binary = self.script(tmp_path, (
            "import sys\n"
            "for line in sys.stdin:\n"
            "    if 'check-sat' in line: print('banana', flush=True)\n"))
        solver = PipeSolver(binary=binary)
        with pytest.raises(SolverError):
            solver.check_sat(timeout=5)
        solver.close()


# -- mid-session crash containment: the respawn path --------------------------


class TestSolverRespawn:
    """A solver that dies mid-query is respawned once, transparently."""

    def test_crash_once_solver_respawns_and_answers(self, tmp_path):
        """First check-sat kills the child; the respawn answers instead."""
        marker = str(tmp_path / "crashed-once")
        binary = TestPipeSolver.script(tmp_path, (
            "import os, sys\n"
            "marker = {!r}\n"
            "for line in sys.stdin:\n"
            "    if 'check-sat' in line:\n"
            "        if not os.path.exists(marker):\n"
            "            open(marker, 'w').close()\n"
            "            os._exit(9)\n"
            "        print('sat', flush=True)\n"
            "    elif 'get-value' in line:\n"
            "        print('((|p@0| 1))', flush=True)\n"
            "    elif 'exit' in line:\n"
            "        break\n").format(marker))
        with PipeSolver(binary=binary, timeout=30) as solver:
            assert solver.check_sat(timeout=30) == "sat"
            assert solver.respawns == 1
            # The respawned process serves the rest of the session.
            assert solver.get_values(["|p@0|"], timeout=30) == {"p@0": 1}

    def test_second_crash_on_the_same_query_is_a_solver_error(self, tmp_path):
        binary = TestPipeSolver.script(tmp_path, (
            "import os, sys\n"
            "for line in sys.stdin:\n"
            "    if 'check-sat' in line:\n"
            "        os._exit(9)\n"))
        solver = PipeSolver(binary=binary, timeout=30)
        with pytest.raises(SolverError):
            solver.check_sat(timeout=30)
        assert solver.respawns == 1  # exactly one retry, then give up
        solver.close()

    def test_timeout_kill_is_not_retried(self, tmp_path):
        """A deliberate deadline kill must not trigger a doomed respawn."""
        binary = TestPipeSolver.script(tmp_path, (
            "import sys, time\n"
            "for line in sys.stdin:\n"
            "    time.sleep(60)\n"))
        solver = PipeSolver(binary=binary)
        with pytest.raises(SolverTimeoutError):
            solver.check_sat(timeout=0.3)
        assert solver.respawns == 0
        solver.close()

    def test_injected_crash_fault_replays_the_session(self, fake_solver_script,
                                                      monkeypatch):
        """``solver_crash@query`` kills the child; the replayed transcript
        keeps the declarations and assertions of the session alive."""
        from repro.utils import faults
        monkeypatch.setenv("REPRO_FAULTS", "solver_crash@query=1")
        faults.reset()
        try:
            before = solver_respawns()
            with PipeSolver(binary=fake_solver_script, timeout=30) as solver:
                solver.write("(declare-const x Int)")
                solver.write("(assert (= x 1))")
                assert solver.check_sat(timeout=30) == "sat"
                assert solver.respawns == 1
                assert solver.get_values(["x"], timeout=30) == {"x": 1}
            assert solver_respawns() == before + 1
        finally:
            monkeypatch.delenv("REPRO_FAULTS", raising=False)
            faults.reset()

    def test_checker_details_surface_the_respawn_count(self, fake_solver,
                                                       monkeypatch):
        from repro.utils import faults
        monkeypatch.setenv("REPRO_FAULTS", "solver_crash@query=1")
        faults.reset()
        try:
            checker = create_checker("bmc", CheckerContext(latch_ring()),
                                     {"max_depth": 4})
            outcome = checker.check(DeadlockQuery())
            assert outcome.holds is False  # the verdict itself is unaffected
            assert "solver respawned 1 time(s)" in outcome.details
        finally:
            monkeypatch.delenv("REPRO_FAULTS", raising=False)
            faults.reset()


# -- optional-dependency gating (the REPRO_NO_Z3 path) ------------------------


class TestAvailability:
    def test_repro_no_z3_wins_over_everything(self, monkeypatch,
                                              fake_solver_script):
        monkeypatch.setenv("REPRO_SMT_Z3", fake_solver_script)
        monkeypatch.setenv("REPRO_NO_Z3", "1")
        assert solver_binary() is None
        assert solver_available() is False
        assert solver_fingerprint() is None
        with pytest.raises(SolverUnavailableError) as info:
            require_solver()
        assert "REPRO_NO_Z3" in str(info.value)

    def test_missing_binary_message_is_actionable(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_Z3", raising=False)
        monkeypatch.delenv("REPRO_SMT_Z3", raising=False)
        monkeypatch.setenv("PATH", "/nonexistent")
        with pytest.raises(SolverUnavailableError) as info:
            require_solver()
        assert "z3" in str(info.value)

    def test_solver_checkers_skip_cleanly_without_a_solver(self, no_solver):
        context = CheckerContext(pair_ring())
        for name in SMT_CHECKERS:
            checker = create_checker(name, context)
            outcome = checker.check(DeadlockQuery())
            assert outcome.holds is None
            assert "solver" in outcome.details

    def test_portfolio_still_concludes_without_a_solver(self, no_solver):
        net = to_petri_net(token_ring(registers=4, tokens=1))
        checker = create_checker("portfolio", CheckerContext(net))
        assert checker.check(DeadlockQuery()).holds is True

    def test_cli_exits_2_with_a_named_binary(self, no_solver, capsys):
        from repro.workcraft.cli import main
        with pytest.raises(SystemExit) as info:
            main(["verify", "--example", "ring", "--checker", "ic3"])
        assert info.value.code == 2
        stderr = capsys.readouterr().err
        assert "ic3" in stderr and "z3" in stderr

    def test_checker_help_is_generated_from_the_registry(self):
        from repro.workcraft.cli import _checker_help
        text = _checker_help()
        for name, cls in CHECKERS.items():
            assert name in text
            assert cls.summary


# -- the structural fallback: siphon/trap proofs ------------------------------


class TestSiphonTrap:
    def test_siphon_and_trap_predicates(self):
        net = pair_ring()
        assert is_siphon(net, {"a", "b"})
        assert is_trap(net, {"a", "b"})
        assert is_siphon(net, {"na", "nb"})
        assert not is_siphon(net, {"a"})
        assert maximal_trap_within(net, {"a", "b", "na"}) == {"a", "b", "na"}
        assert maximal_trap_within(net, {"na"}) == set()
        # Genuine shrinking: dropping b (whose production escapes) leaves
        # the one-shot latch place, which nothing ever consumes.
        assert maximal_trap_within(latch_ring(), {"b", "c"}) == {"c"}

    def test_minimal_siphons_of_the_pair_ring(self):
        siphons = minimal_siphons(pair_ring())
        assert frozenset({"a", "b"}) in siphons
        assert frozenset({"na", "nb"}) in siphons
        assert all(not s < t for s in siphons for t in siphons if s != t)

    def test_certificate_proves_the_pair_ring(self):
        certificate = siphon_trap_certificate(pair_ring())
        assert certificate["proved"]
        assert "(holds, unbounded)" in certificate["reason"]
        assert certificate["witnesses"]

    @pytest.mark.parametrize("factory", [
        lambda: linear_pipeline(stages=3),
        lambda: token_ring(registers=4, tokens=1),
    ])
    def test_certificate_proves_the_cli_example_families(self, factory):
        net = to_petri_net(factory())
        certificate = siphon_trap_certificate(
            net, semiflows=compute_semiflows(net))
        assert certificate["proved"]

    def test_certificate_never_proves_a_deadlocking_net(self):
        net = to_petri_net(build_pipeline_model(3, static_prefix=1, holes=[2]))
        certificate = siphon_trap_certificate(
            net, semiflows=compute_semiflows(net))
        assert not certificate["proved"]

    def test_inductive_checker_proves_deadlock_freedom(self):
        net = to_petri_net(linear_pipeline(stages=3))
        checker = create_checker("inductive", CheckerContext(net))
        outcome = checker.check(DeadlockQuery())
        assert outcome.holds is True
        assert "(holds, unbounded)" in outcome.details

    def test_inductive_checker_reports_an_initially_dead_net(self):
        net = PetriNet("stuck")
        net.add_place("p", tokens=0)
        net.add_transition("t")
        net.add_arc("p", "t")
        checker = create_checker("inductive", CheckerContext(net))
        outcome = checker.check(DeadlockQuery())
        assert outcome.holds is False
        assert outcome.witnesses


# -- the engines, end to end through the fake solver --------------------------


class TestEnginesWithFakeSolver:
    def test_bmc_falsifies_with_a_replayable_trace(self, fake_solver):
        net = latch_ring()
        checker = create_checker("bmc", CheckerContext(net),
                                 {"max_depth": 4})
        outcome = checker.check(DeadlockQuery())
        assert outcome.holds is False
        trace = outcome.witnesses[0]["trace"]
        assert trace == ["t_ab", "t_ba"]
        marking = net.initial_marking()
        for transition in trace:
            marking = net.fire(transition, marking)
        assert not net.enabled_transitions(marking)

    def test_bmc_cannot_prove_and_says_so(self, fake_solver):
        checker = create_checker("bmc", CheckerContext(pair_ring()),
                                 {"max_depth": 3})
        outcome = checker.check(ReachQuery('$"a" & $"b"'))
        assert outcome.holds is None
        assert "cannot prove" in outcome.details

    def test_kinduction_proves_unbounded(self, fake_solver):
        checker = create_checker("kinduction", CheckerContext(pair_ring()),
                                 {"max_depth": 4})
        unreach = checker.check(ReachQuery('$"a" & $"b"'))
        assert unreach.holds is True
        assert "holds, unbounded" in unreach.details
        assert checker.check(DeadlockQuery()).holds is True

    def test_kinduction_falsifies_with_a_trace(self, fake_solver):
        checker = create_checker("kinduction", CheckerContext(pair_ring()),
                                 {"max_depth": 4})
        outcome = checker.check(ReachQuery('$"na" & $"b"'))
        assert outcome.holds is False
        assert outcome.witnesses[0]["trace"] == ["t_ab"]

    def test_ic3_learns_a_certificate(self, fake_solver):
        net = latch_ring()
        checker = create_checker("ic3", CheckerContext(net))
        outcome = checker.check(ReachQuery('$"na" & $"nc"'))
        assert outcome.holds is True
        assert "holds, unbounded" in outcome.details
        assert checker.certificate["clauses"]

    def test_ic3_falsifies_with_a_trace(self, fake_solver):
        checker = create_checker("ic3", CheckerContext(latch_ring()))
        outcome = checker.check(DeadlockQuery())
        assert outcome.holds is False
        assert outcome.witnesses[0]["trace"] == ["t_ab", "t_ba"]

    def test_conclusive_verdicts_agree_with_exhaustive(self, fake_solver):
        for net in (pair_ring(), latch_ring()):
            context = CheckerContext(net)
            exhaustive = create_checker("exhaustive", context)
            queries = (DeadlockQuery(), ReachQuery('$"a" & $"b"'),
                       ReachQuery('$"na" & $"b"'))
            for query in queries:
                truth = exhaustive.check(query).holds
                assert truth is not None
                for name in SMT_CHECKERS:
                    checker = create_checker(name, context,
                                             {"max_depth": 4}
                                             if name != "ic3" else None)
                    verdict = checker.check(query).holds
                    assert verdict is None or verdict is truth, \
                        "{} contradicts exhaustive on {}/{}".format(
                            name, net.name, query.kind)

    def test_induction_concludes_where_exhaustive_truncates(self, fake_solver):
        context = CheckerContext(pair_ring(), max_states=1)
        assert create_checker(
            "exhaustive", context).check(DeadlockQuery()).holds is None
        for name in ("kinduction", "ic3"):
            outcome = create_checker(name, context).check(DeadlockQuery())
            assert outcome.holds is True
            assert "holds, unbounded" in outcome.details

    def test_wide_rings_family_closes_at_k1(self, fake_solver):
        checker = create_checker("kinduction", CheckerContext(wide_rings(2)),
                                 {"max_depth": 2})
        outcome = checker.check(ReachQuery('$"a0" & $"b0"'))
        assert outcome.holds is True

    def test_safeness_agrees_with_exhaustive(self, fake_solver):
        net = pair_ring()
        context = CheckerContext(net)
        truth = create_checker("exhaustive", context).check(
            SafenessQuery()).holds
        assert truth is True
        outcome = create_checker("kinduction", context,
                                 {"max_depth": 3}).check(SafenessQuery())
        assert outcome.holds in (None, True)

    def test_ic3_declines_safeness(self, fake_solver):
        outcome = create_checker("ic3", CheckerContext(pair_ring())).check(
            SafenessQuery())
        assert outcome.holds is None


# -- cache digests and the service surface ------------------------------------


class TestSolverDigests:
    def test_solver_checkers_pin_the_fingerprint(self):
        base = dict(kwargs={"comp_stages": 1}, properties=("deadlock",))
        for name in SMT_CHECKERS + ("portfolio",):
            options = VerificationJob(
                "j", "conditional", checker=name, **base).options()
            assert "solver" in options
        exhaustive = VerificationJob(
            "j", "conditional", checker="exhaustive", **base).options()
        assert "solver" not in exhaustive

    def test_wire_form_never_smuggles_a_solver_key(self):
        job = VerificationJob("j", "conditional", checker="ic3",
                              kwargs={"comp_stages": 1},
                              properties=("deadlock",))
        payload = job.to_dict()
        payload["solver"] = "spoofed"
        round_tripped = VerificationJob.from_dict(payload)
        assert options_digest(round_tripped.options()) == \
            options_digest(job.options())

    def test_service_health_reports_the_solver(self):
        from repro.service.core import VerificationService
        service = VerificationService(parallelism=1)
        try:
            assert "solver" in service.healthz()
            assert "solver" in service.stats()
        finally:
            service.close()


# -- the real thing: z3-gated differential and beyond-the-horizon tier --------

requires_z3 = pytest.mark.skipif(
    not solver_available(), reason="needs the z3 binary on PATH")


@requires_z3
class TestWithRealZ3:
    def test_fingerprint_identifies_the_solver(self):
        fingerprint = solver_fingerprint()
        assert isinstance(fingerprint, str) and fingerprint

    @pytest.mark.parametrize("factory", [
        lambda: to_petri_net(conditional_comp_dfs(comp_stages=1)),
        lambda: to_petri_net(linear_pipeline(stages=3)),
        lambda: to_petri_net(token_ring(registers=4, tokens=1)),
        lambda: to_petri_net(build_pipeline_model(3, static_prefix=1,
                                                  holes=[2])),
    ])
    def test_conclusive_verdicts_agree_with_exhaustive(self, factory):
        net = factory()
        context = CheckerContext(net)
        exhaustive = create_checker("exhaustive", context)
        for query in (DeadlockQuery(), SafenessQuery()):
            truth = exhaustive.check(query).holds
            assert truth is not None
            for name in SMT_CHECKERS:
                checker = create_checker(name, context)
                verdict = checker.check(query).holds
                assert verdict is None or verdict is truth, \
                    "{} contradicts exhaustive on {}/{}".format(
                        name, net.name, query.kind)

    def test_bmc_finds_the_hole_deadlock(self):
        net = to_petri_net(build_pipeline_model(3, static_prefix=1,
                                                holes=[2]))
        checker = create_checker("bmc", CheckerContext(net))
        outcome = checker.check(DeadlockQuery())
        assert outcome.holds is False
        marking = net.initial_marking()
        for transition in outcome.witnesses[0]["trace"]:
            marking = net.fire(transition, marking)
        assert not net.enabled_transitions(marking)

    def test_proofs_beyond_the_exhaustive_horizon(self):
        # 2**21 = 2,097,152 reachable states; the exhaustive engine is
        # truncated three orders of magnitude below that.
        net = wide_rings(21)
        context = CheckerContext(net, max_states=1000)
        assert create_checker("exhaustive", context).check(
            ReachQuery('$"a0" & $"b0"')).holds is None
        for name in ("kinduction", "ic3"):
            outcome = create_checker(name, context).check(
                ReachQuery('$"a0" & $"b0"'))
            assert outcome.holds is True, name
            assert "holds, unbounded" in outcome.details

    def test_kinduction_proves_deadlock_freedom_beyond_the_horizon(self):
        context = CheckerContext(wide_rings(21), max_states=1000)
        outcome = create_checker("kinduction", context).check(DeadlockQuery())
        assert outcome.holds is True
        assert "holds, unbounded" in outcome.details
