"""Tests for the compiled bitmask reachability engine (repro.petri.compiled).

The differential tests are the contract of the engine: on every model of
``repro.dfs.examples`` (and a few hand-built nets) the compiled engine must
produce bit-identical states, edges, deadlocks, frontier and property
verdicts to the explicit explorer, including under truncation.
"""

import pytest

from repro.dfs.examples import (
    conditional_comp_dfs,
    conditional_comp_sdfs,
    linear_pipeline,
    token_ring,
)
from repro.dfs.translation import to_compiled_net, to_petri_net
from repro.exceptions import CompilationError, SafenessOverflowError
from repro.petri.compiled import (
    CompiledNet,
    CompiledReachabilityGraph,
    explore_compiled,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.properties import (
    check_boundedness,
    check_deadlock,
    check_mutual_exclusion,
    check_persistence,
)
from repro.petri.reachability import build_reachability_graph, explore
from repro.reach.evaluator import find_witnesses, holds_somewhere


EXAMPLE_MODELS = [
    pytest.param(lambda: conditional_comp_dfs(comp_stages=1), id="conditional-dfs-1"),
    pytest.param(lambda: conditional_comp_dfs(comp_stages=2), id="conditional-dfs-2"),
    pytest.param(lambda: conditional_comp_sdfs(comp_stages=1), id="conditional-sdfs"),
    pytest.param(lambda: linear_pipeline(stages=3), id="linear-pipeline"),
    pytest.param(lambda: token_ring(registers=4, tokens=1), id="token-ring-4-1"),
    pytest.param(lambda: token_ring(registers=5, tokens=2), id="token-ring-5-2"),
]


def both_graphs(net, max_states=200000):
    explicit = explore(net, max_states=max_states)
    compiled = build_reachability_graph(net, max_states=max_states, engine="compiled")
    assert isinstance(compiled, CompiledReachabilityGraph)
    return explicit, compiled


def hazard_net():
    net = PetriNet("hazard")
    net.add_place("g", tokens=1)
    net.add_place("g_done")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("kill")
    net.add_transition("observe")
    net.add_arc("g", "kill")
    net.add_arc("kill", "g_done")
    net.add_arc("p", "observe")
    net.add_arc("observe", "q")
    net.add_read_arc("g", "observe")
    return net


class TestDifferentialExamples:
    @pytest.mark.parametrize("model", EXAMPLE_MODELS)
    def test_states_and_edges_identical(self, model):
        net = to_petri_net(model())
        explicit, compiled = both_graphs(net)
        assert explicit.states == compiled.states
        assert explicit.edge_count() == compiled.edge_count()
        assert not compiled.truncated
        for marking in explicit.states:
            assert explicit.enabled(marking) == compiled.enabled(marking)
            assert explicit.successors(marking) == compiled.successors(marking)
            assert sorted(explicit.predecessors(marking), key=repr) == sorted(
                compiled.predecessors(marking), key=repr
            )

    @pytest.mark.parametrize("model", EXAMPLE_MODELS)
    def test_deadlocks_and_property_verdicts_identical(self, model):
        net = to_petri_net(model())
        explicit, compiled = both_graphs(net)
        assert explicit.deadlocks() == compiled.deadlocks()
        assert check_deadlock(explicit).holds == check_deadlock(compiled).holds
        assert check_boundedness(explicit, bound=1).holds == \
            check_boundedness(compiled, bound=1).holds
        explicit_persistence = check_persistence(explicit)
        compiled_persistence = check_persistence(compiled)
        assert explicit_persistence.holds == compiled_persistence.holds
        def strip(ws):
            return [{k: w[k] for k in ("marking", "fired", "disabled") if k in w}
                    for w in ws]
        assert strip(explicit_persistence.witnesses) == strip(compiled_persistence.witnesses)

    @pytest.mark.parametrize("model", EXAMPLE_MODELS)
    def test_trace_lengths_identical(self, model):
        net = to_petri_net(model())
        explicit, compiled = both_graphs(net)
        for marking in explicit.states:
            assert len(explicit.trace_to(marking)) == len(compiled.trace_to(marking))

    def test_mutual_exclusion_verdicts_identical(self):
        net = to_petri_net(conditional_comp_dfs(comp_stages=1))
        explicit, compiled = both_graphs(net)
        for pair in [("Mt_ctrl_1", "Mf_ctrl_1"), ("M_in_1", "M_out_1"),
                     ("M_in_1", "M_in_0")]:
            a = check_mutual_exclusion(explicit, *pair)
            b = check_mutual_exclusion(compiled, *pair)
            assert a.holds == b.holds
            assert [w["marking"] for w in a.witnesses] == \
                [w["marking"] for w in b.witnesses]

    def test_reach_witnesses_identical(self):
        net = to_petri_net(conditional_comp_dfs(comp_stages=1))
        explicit, compiled = both_graphs(net)
        for expression in ['$"M_in_1"', '$"M_r1_1" & $"Mf_ctrl_1"',
                           'tokens(M_ctrl_1) >= 1 -> !$"C_cond_1"']:
            a = find_witnesses(expression, explicit)
            b = find_witnesses(expression, compiled)
            assert [w["marking"] for w in a] == [w["marking"] for w in b]
            assert [len(w["trace"]) for w in a] == [len(w["trace"]) for w in b]
            assert holds_somewhere(expression, explicit) == \
                holds_somewhere(expression, compiled)

    def test_persistence_hazard_witnesses_identical(self):
        explicit, compiled = both_graphs(hazard_net())
        a = check_persistence(explicit)
        b = check_persistence(compiled)
        assert a.holds is False and b.holds is False
        assert a.witnesses[0]["fired"] == b.witnesses[0]["fired"] == "kill"
        assert a.witnesses[0]["disabled"] == b.witnesses[0]["disabled"] == "observe"


class TestTruncationParity:
    @pytest.mark.parametrize("max_states", [1, 2, 5, 17])
    def test_truncated_graphs_identical(self, max_states):
        net = to_petri_net(conditional_comp_dfs(comp_stages=1))
        explicit, compiled = both_graphs(net, max_states=max_states)
        assert explicit.truncated and compiled.truncated
        assert explicit.states == compiled.states
        assert explicit.frontier == compiled.frontier
        assert explicit.deadlocks() == compiled.deadlocks()
        assert explicit.edge_count() == compiled.edge_count()
        for marking in explicit.states:
            assert explicit.enabled(marking) == compiled.enabled(marking)


class TestCompiledNet:
    def test_encode_decode_roundtrip(self):
        compiled = to_compiled_net(token_ring(registers=4, tokens=1))
        initial = compiled.net.initial_marking()
        assert compiled.decode(compiled.encode(initial)) == initial

    def test_encode_rejects_multi_token_markings(self):
        compiled = to_compiled_net(linear_pipeline(stages=1))
        with pytest.raises(CompilationError):
            compiled.encode(Marking({"M_r0_1": 2}))

    def test_encode_rejects_unknown_places(self):
        compiled = to_compiled_net(linear_pipeline(stages=1))
        with pytest.raises(CompilationError):
            compiled.encode(Marking({"nonexistent": 1}))

    def test_weighted_arcs_are_not_compilable(self):
        net = PetriNet("weighted")
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t", weight=2)
        net.add_arc("t", "q")
        assert CompiledNet.try_compile(net) is None
        with pytest.raises(CompilationError):
            CompiledNet.compile(net)

    def test_enabledness_matches_net(self):
        net = hazard_net()
        compiled = CompiledNet.compile(net)
        marking = net.initial_marking()
        state = compiled.encode(marking)
        for index, name in enumerate(compiled.transition_names):
            assert compiled.is_enabled(index, state) == net.is_enabled(name, marking)

    def test_overflow_is_detected(self):
        net = PetriNet("overflow")
        net.add_place("p", tokens=1)
        net.add_place("q", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")  # q already marked: firing makes 2 tokens
        compiled = CompiledNet.compile(net)
        with pytest.raises(SafenessOverflowError):
            explore_compiled(compiled)

    def test_one_safe_net_annotation_from_translation(self):
        net = to_petri_net(linear_pipeline(stages=1))
        assert net.annotation["one_safe"] == "by-construction"


class TestEngineFallback:
    def test_auto_falls_back_on_multi_token_marking(self):
        net = PetriNet("unsafe")
        net.add_place("src", tokens=2)
        net.add_place("sink")
        net.add_transition("move")
        net.add_arc("src", "move")
        net.add_arc("move", "sink")
        graph = build_reachability_graph(net)
        assert not isinstance(graph, CompiledReachabilityGraph)
        assert len(graph) == 3  # 2/0, 1/1, 0/2

    def test_auto_falls_back_on_runtime_overflow(self):
        net = PetriNet("overflow")
        net.add_place("p", tokens=1)
        net.add_place("q", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        graph = build_reachability_graph(net)
        assert not isinstance(graph, CompiledReachabilityGraph)
        assert len(graph) == 2

    def test_forced_compiled_engine_raises(self):
        net = PetriNet("unsafe")
        net.add_place("src", tokens=2)
        net.add_place("sink")
        net.add_transition("move")
        net.add_arc("src", "move")
        net.add_arc("move", "sink")
        with pytest.raises(CompilationError):
            build_reachability_graph(net, engine="compiled")

    def test_forced_explicit_engine(self):
        net = to_petri_net(linear_pipeline(stages=1))
        graph = build_reachability_graph(net, engine="explicit")
        assert not isinstance(graph, CompiledReachabilityGraph)

    def test_unknown_engine_rejected(self):
        net = to_petri_net(linear_pipeline(stages=1))
        with pytest.raises(ValueError):
            build_reachability_graph(net, engine="quantum")
