"""Tests for the verification-campaign subsystem (repro.campaign)."""

import json
import os
import time

import pytest

from repro.campaign import (
    ResultCache,
    ScenarioSpec,
    VerificationJob,
    generate_scenarios,
    net_fingerprint,
    options_digest,
    register_factory,
    run_campaign,
    start_method,
)
from repro.dfs.translation import to_petri_net
from repro.verification.verifier import Verifier
from repro.workcraft.cli import main as cli_main


# Worker-failure factories.  They are registered at import time, so forked
# campaign workers inherit them; the tests that rely on this skip on
# platforms without the fork start method.
def _sleepy_factory(**kwargs):
    time.sleep(60)


def _crashy_factory(**kwargs):
    os._exit(3)


def _raisy_factory(**kwargs):
    raise ValueError("intentional factory failure")


register_factory("_test_sleepy", _sleepy_factory)
register_factory("_test_crashy", _crashy_factory)
register_factory("_test_raisy", _raisy_factory)

needs_fork = pytest.mark.skipif(
    start_method() != "fork",
    reason="registry factories only reach workers under the fork start method")


class TestScenarioGeneration:
    def test_grid_expansion_and_expectations(self):
        spec = ScenarioSpec(depths=(2, 3, 4), holes=(0, 1))
        jobs, skipped = generate_scenarios(spec)
        ids = [job.job_id for job in jobs]
        assert ids == ["pipeline-d2-p1-h0", "pipeline-d3-p1-h0", "pipeline-d3-p1-h1",
                       "pipeline-d4-p1-h0", "pipeline-d4-p1-h1"]
        by_id = {job.job_id: job for job in jobs}
        assert by_id["pipeline-d3-p1-h1"].expect == "deadlock"
        assert by_id["pipeline-d3-p1-h1"].kwargs["holes"] == [2]
        assert by_id["pipeline-d4-p1-h0"].expect == "pass"
        # depth 2 with one hole leaves no included stage behind the hole.
        assert len(skipped) == 1
        assert skipped[0]["axes"]["depth"] == 2
        assert "no included stage" in skipped[0]["reason"]

    def test_invalid_prefix_is_skipped_not_dropped_silently(self):
        spec = ScenarioSpec(depths=(2,), static_prefixes=(3,), holes=(0,))
        jobs, skipped = generate_scenarios(spec)
        assert jobs == []
        assert len(skipped) == 1
        assert "exceeds" in skipped[0]["reason"]

    def test_hole_without_deadlock_check_carries_no_prediction(self):
        spec = ScenarioSpec(depths=(3,), holes=(1,), properties=("safeness",))
        jobs, _ = generate_scenarios(spec)
        assert jobs[0].expect is None
        report = run_campaign(jobs, parallelism=0)
        # The reduced sweep passes and, with no prediction, still counts as
        # matched instead of poisoning the campaign's exit status.
        assert report.results[0].matched is True
        assert report.ok

    def test_duplicate_seed_and_voltage_values_are_deduped(self):
        spec = ScenarioSpec(depths=(2,), lfsr_seeds=(1, 1), voltages=(1.2, 1.2))
        jobs, _ = generate_scenarios(spec)
        assert len(jobs) == 1

    def test_negative_axis_values_are_skipped_with_reasons(self):
        jobs, skipped = generate_scenarios(ScenarioSpec(depths=(3,), holes=(-1,)))
        assert jobs == []
        assert "negative" in skipped[0]["reason"]
        jobs, skipped = generate_scenarios(
            ScenarioSpec(depths=(3,), static_prefixes=(-1,)))
        assert jobs == []
        assert "negative" in skipped[0]["reason"]

    def test_jobs_are_picklable(self):
        import pickle

        jobs, _ = generate_scenarios(ScenarioSpec(depths=(2,)))
        clone = pickle.loads(pickle.dumps(jobs[0]))
        assert clone.job_id == jobs[0].job_id
        assert clone.kwargs == jobs[0].kwargs


class TestEmptyCampaign:
    def test_empty_grid_yields_clean_empty_report(self, tmp_path):
        report = run_campaign([], parallelism=4, cache_dir=str(tmp_path / "cache"))
        assert len(report) == 0
        assert report.ok
        assert report.cache_hits == 0
        assert report.summary()["jobs"] == 0
        payload = json.loads(report.render_json())
        assert payload["results"] == []
        assert "| scenario |" in report.to_markdown()
        assert "0 job(s)" in report.render_text()


class TestInlineCampaign:
    def test_outcomes_match_grid_expectations(self):
        clean, skipped = generate_scenarios(ScenarioSpec(depths=(2,), holes=(0, 1)))
        holey, _ = generate_scenarios(ScenarioSpec(depths=(3,), holes=(1,)))
        report = run_campaign(clean + holey, parallelism=0)
        assert len(skipped) == 1
        assert report.ok
        assert [result.outcome for result in report.results] == ["pass", "fail"]
        deadlock = next(record for record in report.results[1].verdict["properties"]
                        if record["property"] == "deadlock")
        assert deadlock["holds"] is False
        assert deadlock["trace"], "deadlock witness must carry a trace"
        assert report.results[1].matched

    def test_factory_error_is_an_error_result(self):
        report = run_campaign([VerificationJob("bad", "_test_raisy")], parallelism=0)
        result = report.results[0]
        assert result.status == "error"
        assert "intentional factory failure" in result.error
        assert not result.matched
        assert not report.ok

    def test_unknown_factory_is_an_error_result(self):
        report = run_campaign([VerificationJob("bad", "no-such-factory")],
                              parallelism=0)
        assert report.results[0].status == "error"
        assert "unknown model factory" in report.results[0].error

    def test_duplicate_job_ids_are_rejected(self):
        from repro.exceptions import ConfigurationError

        jobs = [VerificationJob("dup", "conditional", kwargs={"comp_stages": 1}),
                VerificationJob("dup", "conditional", kwargs={"comp_stages": 2})]
        with pytest.raises(ConfigurationError):
            run_campaign(jobs, parallelism=0)


class TestCache:
    def _job(self, job_id="cache-job"):
        return VerificationJob(job_id, "conditional", kwargs={"comp_stages": 1},
                               properties=("safeness", "deadlock"))

    def test_fingerprint_is_stable_and_structure_sensitive(self):
        job = self._job()
        first = net_fingerprint(to_petri_net(job.build_model()))
        second = net_fingerprint(to_petri_net(job.build_model()))
        assert first == second
        other = VerificationJob("other", "conditional", kwargs={"comp_stages": 2})
        assert net_fingerprint(to_petri_net(other.build_model())) != first

    def test_warm_run_returns_bit_identical_verdict(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = self._job().run(cache=cache_dir)
        warm = self._job().run(cache=cache_dir)
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit"
        assert warm["verdict"] == cold["verdict"]

    def test_warm_run_skips_verification_entirely(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        self._job().run(cache=cache_dir)

        def _boom(self, *args, **kwargs):
            raise AssertionError("verification ran despite a warm cache")

        monkeypatch.setattr(Verifier, "verify_properties", _boom)
        warm = self._job().run(cache=cache_dir)
        assert warm["cache"] == "hit"
        assert warm["verdict"]["passed"] is True

    def test_option_changes_invalidate_the_key(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._job().run(cache=cache_dir)
        varied = VerificationJob("varied", "conditional", kwargs={"comp_stages": 1},
                                 properties=("safeness",))
        assert varied.run(cache=cache_dir)["cache"] == "miss"

    def test_digest_orders_keys_canonically(self):
        assert options_digest({"a": 1, "b": 2}) == options_digest({"b": 2, "a": 1})

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key("f" * 64, "0" * 64)
        with open(cache.path(key), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get(key) is None


class TestWorkerPool:
    @needs_fork
    def test_timeout_surfaces_as_failed_result_not_hung_pool(self):
        jobs = [VerificationJob("slow", "_test_sleepy"),
                VerificationJob("fast", "conditional", kwargs={"comp_stages": 1})]
        started = time.perf_counter()
        report = run_campaign(jobs, parallelism=2, timeout=1.0)
        elapsed = time.perf_counter() - started
        assert elapsed < 30, "the pool must not wait for the sleeping worker"
        by_id = {result.job.job_id: result for result in report.results}
        assert by_id["slow"].status == "timeout"
        assert "deadline" in by_id["slow"].error
        assert not by_id["slow"].matched
        assert by_id["fast"].status == "ok"
        assert by_id["fast"].matched
        assert not report.ok

    @needs_fork
    def test_crash_surfaces_as_failed_result(self):
        report = run_campaign([VerificationJob("boom", "_test_crashy")],
                              parallelism=1, timeout=30)
        result = report.results[0]
        assert result.status == "crashed"
        assert "exit code 3" in result.error
        assert result.outcome == "crashed"
        assert not report.ok

    @needs_fork
    def test_parallel_results_keep_job_order(self):
        jobs, _ = generate_scenarios(ScenarioSpec(depths=(2,), holes=(0,),
                                                  lfsr_seeds=(1, 2, 3)))
        report = run_campaign(jobs, parallelism=3, timeout=120)
        assert [result.job.job_id for result in report.results] == \
            [job.job_id for job in jobs]
        assert report.ok


class TestCampaignCli:
    @needs_fork
    def test_grid_cli_parallel_with_warm_cache_second_run(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        report_path = str(tmp_path / "report.json")
        argv = ["campaign", "--grid", "depth=2..3", "--holes", "0,1",
                "--jobs", "2", "--cache-dir", cache_dir, "--json", report_path,
                "--quiet"]
        assert cli_main(argv) == 0
        cold = json.load(open(report_path, encoding="utf-8"))
        assert cold["summary"]["jobs"] == 3
        assert cold["summary"]["mismatched"] == 0
        assert cold["summary"]["cache_hits"] == 0
        assert cold["campaign"]["grid"]["depths"] == [2, 3]

        assert cli_main(argv) == 0
        warm = json.load(open(report_path, encoding="utf-8"))
        # The warm run answers every job from the verdict cache...
        assert warm["summary"]["cache_hits"] == warm["summary"]["jobs"] == 3
        # ...with verdicts bit-identical to the cold run.
        cold_verdicts = [result["verdict"] for result in cold["results"]]
        warm_verdicts = [result["verdict"] for result in warm["results"]]
        assert warm_verdicts == cold_verdicts
        capsys.readouterr()

    @needs_fork
    def test_crashed_job_exits_with_infrastructure_code(self, tmp_path):
        """A crashed worker is an infrastructure failure: exit 2, not 0/1."""
        report_path = str(tmp_path / "report.json")
        argv = ["campaign", "--grid", "depth=2", "--family", "_test_crashy",
                "--jobs", "1", "--timeout", "30", "--no-cache",
                "--json", report_path, "--quiet"]
        assert cli_main(argv) == 2
        payload = json.load(open(report_path, encoding="utf-8"))
        assert payload["summary"]["outcomes"]["crashed"] == 1
        assert payload["summary"]["ok"] is False

    @needs_fork
    def test_timed_out_job_exits_with_infrastructure_code(self, tmp_path):
        report_path = str(tmp_path / "report.json")
        argv = ["campaign", "--grid", "depth=3", "--jobs", "1",
                "--timeout", "0.05", "--no-cache", "--json", report_path,
                "--quiet"]
        assert cli_main(argv) == 2
        payload = json.load(open(report_path, encoding="utf-8"))
        assert payload["summary"]["outcomes"]["timeout"] == 1

    def test_bad_grid_axis_is_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "--grid", "bogus=1"])

    def test_malformed_axis_values_are_clean_cli_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "--grid", "depth=2", "--holes", "x"])
        with pytest.raises(SystemExit):
            cli_main(["campaign", "--grid", "depth=2", "--voltages", "0.9..1.2"])

    def test_unknown_property_name_is_a_parse_time_error(self):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "--grid", "depth=2", "--properties", "deadlok"])

    def test_report_directories_are_created_up_front(self, tmp_path):
        report_path = str(tmp_path / "nested" / "dir" / "report.json")
        argv = ["campaign", "--grid", "depth=2", "--jobs", "0", "--no-cache",
                "--json", report_path, "--quiet"]
        assert cli_main(argv) == 0
        assert json.load(open(report_path, encoding="utf-8"))["summary"]["jobs"] == 1

    @needs_fork
    def test_simulation_and_voltage_axes_annotate_verdicts(self, tmp_path):
        report_path = str(tmp_path / "report.json")
        argv = ["campaign", "--grid", "depth=2", "--seeds", "0xACE1",
                "--voltages", "1.2", "--simulate-steps", "25", "--jobs", "1",
                "--no-cache", "--json", report_path, "--quiet"]
        assert cli_main(argv) == 0
        payload = json.load(open(report_path, encoding="utf-8"))
        verdict = payload["results"][0]["verdict"]
        assert verdict["simulation"]["lfsr_seed"] == 0xACE1
        assert verdict["simulation"]["fired"] > 0
        assert verdict["voltage"]["operational"] is True
