"""Tests for the performance analysis package (cycles, analyser, timed sim)."""

import pytest

from repro.exceptions import SimulationError
from repro.dfs.examples import conditional_comp_dfs, conditional_comp_sdfs, linear_pipeline, token_ring
from repro.performance.analyzer import PerformanceAnalyzer
from repro.performance.cycles import CycleMetrics, cycle_bottlenecks, dataflow_cycles, slowest_cycles
from repro.performance.optimization import suggest_optimisations, wagging_speedup
from repro.performance.timed import TimedDfsSimulator


class TestCycleMetrics:
    def test_ring_metrics(self):
        ring = token_ring(registers=4, tokens=1, logic_delay=1.0)
        metrics = dataflow_cycles(ring)
        assert len(metrics) == 1
        cycle = metrics[0]
        assert cycle.registers == 4
        assert cycle.tokens == 1
        assert cycle.holes == 3
        assert cycle.delay == pytest.approx(4 * 1.0 + 4 * 0.2)
        assert cycle.throughput == pytest.approx(1 / cycle.delay)

    def test_hole_limited_cycle(self):
        ring = token_ring(registers=4, tokens=3)
        cycle = dataflow_cycles(ring)[0]
        assert cycle.holes == 1
        assert not cycle.token_limited
        assert cycle.throughput == pytest.approx(1 / cycle.delay)

    def test_stalled_cycle_with_no_token(self):
        ring = token_ring(registers=3, tokens=1)
        ring.node("r0").marked = False
        cycle = dataflow_cycles(ring)[0]
        assert cycle.is_stalled
        assert cycle.throughput == 0.0

    def test_feed_forward_pipeline_has_no_cycles(self):
        assert dataflow_cycles(linear_pipeline(stages=3)) == []

    def test_slowest_cycles_ordering(self):
        fast = CycleMetrics(["a"], registers=2, tokens=1, delay=1.0)
        slow = CycleMetrics(["b"], registers=2, tokens=1, delay=10.0)
        assert slowest_cycles([fast, slow], count=1) == [slow]

    def test_bottleneck_nodes_are_max_delay(self):
        ring = token_ring(registers=3, tokens=1, logic_delay=2.0)
        ring.node("f1").delay = 9.0
        cycle = dataflow_cycles(ring)[0]
        assert cycle_bottlenecks(ring, cycle) == ["f1"]


class TestAnalyzer:
    def test_report_throughput_matches_slowest_cycle(self):
        ring = token_ring(registers=4, tokens=1)
        report = PerformanceAnalyzer(ring).analyse()
        assert report.throughput == pytest.approx(min(m.throughput for m in report.cycles))

    def test_report_for_acyclic_model(self):
        report = PerformanceAnalyzer(linear_pipeline()).analyse()
        assert report.throughput is None
        assert "no cycles" in report.render()

    def test_report_render_lists_bottlenecks(self):
        report = PerformanceAnalyzer(token_ring(registers=4, tokens=1)).analyse()
        text = report.render()
        assert "bottleneck node" in text
        assert report.table()

    def test_control_loop_cycles_visible_in_reconfigurable_pipeline(
            self, small_reconfigurable_pipeline):
        report = PerformanceAnalyzer(small_reconfigurable_pipeline.dfs).analyse()
        # Each control loop of the reconfigurable stage is a cycle.
        assert len(report.cycles) >= 1


class TestOptimisation:
    def test_token_limited_suggestion(self):
        report = PerformanceAnalyzer(token_ring(registers=6, tokens=1)).analyse()
        suggestions = suggest_optimisations(report)
        kinds = {s.kind for s in suggestions}
        assert "add-token" in kinds
        assert "wagging" in kinds

    def test_bubble_limited_suggestion(self):
        report = PerformanceAnalyzer(token_ring(registers=4, tokens=3)).analyse()
        kinds = {s.kind for s in suggest_optimisations(report)}
        assert "add-register" in kinds

    def test_stalled_cycle_suggestion(self):
        ring = token_ring(registers=3, tokens=1)
        ring.node("r0").marked = False
        report = PerformanceAnalyzer(ring).analyse()
        suggestions = suggest_optimisations(report)
        assert any("never advance" in s.message for s in suggestions)

    def test_target_throughput_filters(self):
        report = PerformanceAnalyzer(token_ring(registers=4, tokens=1)).analyse()
        assert suggest_optimisations(report, target_throughput=1e-9) == []

    def test_wagging_speedup(self):
        assert wagging_speedup(1) == pytest.approx(1.0)
        assert wagging_speedup(2) > 1.5
        assert wagging_speedup(4) < 4.0
        with pytest.raises(ValueError):
            wagging_speedup(0)


class TestTimedSimulation:
    def test_throughput_of_ring_matches_analysis(self):
        ring = token_ring(registers=4, tokens=1, logic_delay=1.0)
        run = TimedDfsSimulator(ring, seed=0).run("r0", token_goal=20)
        analytic = PerformanceAnalyzer(ring).analyse().throughput
        # The timed simulation should land in the same ballpark as the
        # analytic cycle bound (within a factor of two).
        assert run.throughput == pytest.approx(analytic, rel=1.0)
        assert run.tokens_at_observed == 20

    def test_false_fraction_speeds_up_conditional_dfs(self):
        dfs_false = TimedDfsSimulator(
            conditional_comp_dfs(comp_stages=2),
            choice_policy=lambda node, idx: False, seed=1).run("out", token_goal=20)
        dfs_true = TimedDfsSimulator(
            conditional_comp_dfs(comp_stages=2),
            choice_policy=lambda node, idx: True, seed=1).run("out", token_goal=20)
        assert dfs_false.mean_cycle_time < dfs_true.mean_cycle_time

    def test_sdfs_pays_worst_case_regardless_of_data(self):
        sdfs_run = TimedDfsSimulator(conditional_comp_sdfs(comp_stages=2), seed=1).run(
            "out", token_goal=20)
        dfs_false = TimedDfsSimulator(
            conditional_comp_dfs(comp_stages=2),
            choice_policy=lambda node, idx: False, seed=1).run("out", token_goal=20)
        assert dfs_false.mean_cycle_time < sdfs_run.mean_cycle_time

    def test_unknown_observation_register_raises(self, conditional_dfs):
        with pytest.raises(SimulationError):
            TimedDfsSimulator(conditional_dfs).run("nope", token_goal=1)

    def test_run_for_advances_clock(self, ring):
        simulator = TimedDfsSimulator(ring, seed=0)
        fired = simulator.run_for(10.0)
        assert fired > 0
        assert simulator.now >= 10.0 or simulator.step() is None
