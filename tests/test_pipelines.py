"""Tests for the reconfigurable-pipeline methodology package."""

import pytest

from repro.exceptions import ConfigurationError, ModelError
from repro.dfs.model import DataflowStructure
from repro.dfs.nodes import NodeType
from repro.pipelines.control import add_control_loop, loop_head, set_loop_value
from repro.pipelines.generic import build_generic_pipeline
from repro.pipelines.reconfigurable import PipelineConfiguration
from repro.pipelines.stage import add_reconfigurable_stage, add_static_stage
from repro.verification.verifier import Verifier


class TestControlLoop:
    def test_loop_structure(self):
        dfs = DataflowStructure()
        dfs.add_push("p")
        names = add_control_loop(dfs, "loop", length=3, value=True, guards=["p"])
        assert len(names) == 3
        assert dfs.node(names[0]).marked and dfs.node(names[0]).initial_value is True
        assert not dfs.node(names[1]).marked
        # The loop is closed.
        assert (names[2], names[0]) in dfs.edges
        assert dfs.controls_of("p") == {names[0]}
        assert loop_head(names) == names[0]

    def test_minimum_length_enforced(self):
        dfs = DataflowStructure()
        with pytest.raises(ModelError):
            add_control_loop(dfs, "loop", length=2)

    def test_set_loop_value(self):
        dfs = DataflowStructure()
        names = add_control_loop(dfs, "loop", value=True)
        set_loop_value(dfs, names, False)
        marked = [n for n in names if dfs.node(n).marked]
        assert len(marked) == 1
        assert dfs.node(marked[0]).initial_value is False

    def test_loop_token_oscillates(self):
        """A 3-register control loop with one token never deadlocks."""
        dfs = DataflowStructure("loop_only")
        add_control_loop(dfs, "loop", length=3, value=True)
        assert Verifier(dfs).verify_deadlock_freedom().holds is True


class TestStages:
    def test_static_stage_node_types(self):
        dfs = DataflowStructure()
        ports = add_static_stage(dfs, "s1")
        assert dfs.kind(ports.local_in) is NodeType.REGISTER
        assert dfs.kind(ports.global_in) is NodeType.REGISTER
        assert not ports.reconfigurable
        assert ports.control_loops == []

    def test_reconfigurable_stage_node_types(self):
        dfs = DataflowStructure()
        ports = add_reconfigurable_stage(dfs, "s2", included=True)
        assert dfs.kind(ports.local_in) is NodeType.PUSH
        assert dfs.kind(ports.global_in) is NodeType.PUSH
        assert dfs.kind(ports.global_out) is NodeType.POP
        assert len(ports.control_loops) == 2

    def test_shared_control_stage_has_single_loop(self):
        dfs = DataflowStructure()
        ports = add_reconfigurable_stage(dfs, "s2", share_control=True)
        assert len(ports.control_loops) == 1
        head = ports.global_ctrl[0]
        assert dfs.controls_of(ports.local_in) == {head}
        assert dfs.controls_of(ports.global_in) == {head}
        assert dfs.controls_of(ports.global_out) == {head}

    def test_excluded_stage_initialised_with_false(self):
        dfs = DataflowStructure()
        ports = add_reconfigurable_stage(dfs, "s3", included=False)
        head = ports.local_ctrl[0]
        assert dfs.node(head).initial_value is False


class TestGenericPipeline:
    def test_structure_counts(self):
        pipeline = build_generic_pipeline(3, static_prefix_stages=1)
        assert pipeline.depth == 3
        assert len(pipeline.static_stages) == 1
        assert len(pipeline.reconfigurable_stages) == 2
        assert pipeline.input_register == "in"
        assert pipeline.output_register == "out"

    def test_stage_indexing(self):
        pipeline = build_generic_pipeline(3, static_prefix_stages=1)
        assert pipeline.stage(1).name == "s1"
        assert pipeline.stage(3).name == "s3"
        with pytest.raises(ConfigurationError):
            pipeline.stage(4)

    def test_local_chain_connectivity(self):
        pipeline = build_generic_pipeline(3, static_prefix_stages=1)
        dfs = pipeline.dfs
        assert ("in", pipeline.stage(1).local_in) in dfs.edges
        assert (pipeline.stage(1).local_out, pipeline.stage(2).local_in) in dfs.edges

    def test_global_broadcast_and_aggregation(self):
        pipeline = build_generic_pipeline(3, static_prefix_stages=1)
        dfs = pipeline.dfs
        for stage in pipeline.stages:
            assert ("in", stage.global_in) in dfs.edges
            assert (stage.global_out, "aggregate") in dfs.edges
        assert ("aggregate", "out") in dfs.edges

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            build_generic_pipeline(0)
        with pytest.raises(ConfigurationError):
            build_generic_pipeline(3, static_prefix_stages=5)
        with pytest.raises(ConfigurationError):
            build_generic_pipeline(3, static_prefix_stages=1, included_depth=0)

    def test_fully_included_pipeline_is_deadlock_free(self, small_reconfigurable_pipeline):
        verifier = Verifier(small_reconfigurable_pipeline.dfs, max_states=500000)
        assert verifier.verify_deadlock_freedom().holds is True
        assert verifier.verify_control_mismatch().holds is True

    def test_depth_configured_pipeline_is_deadlock_free(self):
        """Excluding the trailing stage must keep the pipeline alive."""
        pipeline = build_generic_pipeline(2, static_prefix_stages=1, included_depth=1,
                                          name="pipe2_depth1")
        verifier = Verifier(pipeline.dfs, max_states=500000)
        assert verifier.verify_deadlock_freedom().holds is True


class TestConfiguration:
    def _pipeline(self, stages=4):
        return build_generic_pipeline(stages, static_prefix_stages=1,
                                      name="cfg{}".format(stages))

    def test_supported_depths(self):
        configuration = PipelineConfiguration(self._pipeline(), min_depth=2)
        assert configuration.supported_depths() == [2, 3, 4]
        assert configuration.max_depth == 4

    def test_set_depth_updates_loops(self):
        pipeline = self._pipeline()
        configuration = PipelineConfiguration(pipeline, min_depth=1)
        configuration.set_depth(2)
        assert configuration.current_depth() == 2
        assert configuration.included_stages() == ["s1", "s2"]
        assert configuration.validate() == []

    def test_set_depth_out_of_range(self):
        configuration = PipelineConfiguration(self._pipeline(), min_depth=2)
        with pytest.raises(ConfigurationError):
            configuration.set_depth(1)
        with pytest.raises(ConfigurationError):
            configuration.set_depth(5)

    def test_min_depth_cannot_exclude_static_prefix(self):
        with pytest.raises(ConfigurationError):
            PipelineConfiguration(self._pipeline(), min_depth=0)

    def test_hole_configuration_reported(self):
        pipeline = self._pipeline()
        configuration = PipelineConfiguration(pipeline, min_depth=1)
        # Manually exclude stage 2 while stage 3 stays included: a "hole".
        from repro.pipelines.control import set_loop_value
        for loop in pipeline.stage(2).control_loops:
            set_loop_value(pipeline.dfs, loop, False)
        problems = configuration.validate()
        assert problems
        assert any("not a contiguous prefix" in problem for problem in problems)

    def test_hole_configuration_deadlocks(self):
        """The bad configuration class the paper caught by verification."""
        pipeline = build_generic_pipeline(3, static_prefix_stages=1, name="hole3")
        from repro.pipelines.control import set_loop_value
        for loop in pipeline.stage(2).control_loops:
            set_loop_value(pipeline.dfs, loop, False)
        verifier = Verifier(pipeline.dfs, max_states=500000)
        assert verifier.verify_deadlock_freedom().holds is False
