"""Tests of the parallel subsystem: sharded BFS, supervisor, racing, caches.

The central contract under test is *bit-identity*: the sharded explorer must
produce exactly the graph the sequential engine produces (states in
discovery order, packed edges, parents, frontier, truncation), racing
portfolios must never contradict sequential ones, and warm semiflow-cache
hits must equal cold derivations element for element.
"""

import os
import time

import pytest

from repro.campaign.jobs import VerificationJob, build_pipeline_model
from repro.campaign.scenario import ScenarioSpec, generate_scenarios
from repro.dfs.examples import conditional_comp_dfs, linear_pipeline, token_ring
from repro.dfs.translation import to_petri_net
from repro.exceptions import ConfigurationError, VerificationError
from repro.parallel.context import mp_context, start_method
from repro.parallel.sharded import explore_sharded, shard_of
from repro.parallel.supervisor import TaskOutcome, run_supervised
from repro.petri.compiled import CompiledNet, explore_compiled
from repro.petri.fingerprint import net_fingerprint, options_digest
from repro.petri.invariants import (
    InvariantBudgetExceeded,
    SemiflowCache,
    compute_semiflows,
    compute_semiflows_cached,
)
from repro.petri.reachability import build_reachability_graph
from repro.verification.verifier import Verifier


def _example_models():
    return [
        ("conditional", conditional_comp_dfs()),
        ("ring", token_ring()),
        ("linear", linear_pipeline()),
        ("ope2", build_pipeline_model(2, static_prefix=1)),
        ("ope3-hole2", build_pipeline_model(3, static_prefix=1, holes=[2])),
    ]


def _assert_identical(sequential, sharded, tag):
    assert sharded._mask_states == sequential._mask_states, tag
    assert sharded._mask_edges == sequential._mask_edges, tag
    assert sharded._parents == sequential._parents, tag
    assert sharded._frontier_indices == sequential._frontier_indices, tag
    assert sharded.truncated == sequential.truncated, tag


# -- sharded exploration ------------------------------------------------------


class TestShardedExploration:
    def test_bit_identical_across_example_family(self):
        """Same states, edges, parents, frontier -- including truncation."""
        for name, dfs in _example_models():
            compiled = CompiledNet.compile(to_petri_net(dfs))
            for max_states in (1, 2, 7, 50, 1000, 200000):
                sequential = explore_compiled(compiled, max_states=max_states)
                for workers in (1, 2, 3):
                    sharded = explore_sharded(compiled, max_states=max_states,
                                              workers=workers)
                    _assert_identical(sequential, sharded,
                                      "{} max_states={} workers={}".format(
                                          name, max_states, workers))

    def test_graph_level_queries_match(self):
        """Deadlocks, traces and frontier agree through the public API."""
        dfs = build_pipeline_model(3, static_prefix=1, holes=[2])
        compiled = CompiledNet.compile(to_petri_net(dfs))
        sequential = explore_compiled(compiled, max_states=200000)
        sharded = explore_sharded(compiled, max_states=200000, workers=2)
        assert sharded.deadlocks() == sequential.deadlocks()
        assert sharded.edge_count() == sequential.edge_count()
        assert len(sharded) == len(sequential)
        for deadlock in sequential.deadlocks():
            assert sharded.trace_to(deadlock) == sequential.trace_to(deadlock)

    def test_truncated_frontier_is_exact(self):
        dfs = build_pipeline_model(2, static_prefix=1)
        compiled = CompiledNet.compile(to_petri_net(dfs))
        sequential = explore_compiled(compiled, max_states=100)
        sharded = explore_sharded(compiled, max_states=100, workers=2)
        assert sequential.truncated and sharded.truncated
        assert sharded.frontier == sequential.frontier

    def test_verifier_workers_verdicts_bit_identical(self):
        """A workers>1 verifier produces the same summary as a sequential one."""
        dfs = build_pipeline_model(2, static_prefix=1)
        sequential = Verifier(dfs, max_states=500).verify_all(
            include_persistence=True)
        sharded = Verifier(dfs, max_states=500, workers=2).verify_all(
            include_persistence=True)
        for left, right in zip(sequential.results, sharded.results):
            assert left.holds == right.holds
            assert left.details == right.details
            assert left.witnesses == right.witnesses

    def test_build_reachability_graph_workers_parameter(self):
        net = to_petri_net(token_ring())
        sequential = build_reachability_graph(net, max_states=30)
        sharded = build_reachability_graph(net, max_states=30, workers=2)
        _assert_identical(sequential, sharded, "build_reachability_graph")

    def test_rejects_bad_worker_counts(self):
        compiled = CompiledNet.compile(to_petri_net(token_ring()))
        with pytest.raises(VerificationError):
            explore_sharded(compiled, workers=-2)
        with pytest.raises(VerificationError):
            explore_sharded(compiled, workers=1000)

    def test_shard_partition_is_deterministic(self):
        states = [0, 1, 7, 1 << 100, (1 << 180) - 1]
        assert [shard_of(s, 3) for s in states] == [shard_of(s, 3)
                                                    for s in states]


class TestExchangeProtocol:
    """Chunked streaming, the resolution memo, and the worker backends."""

    def test_tiny_chunks_stay_bit_identical(self):
        """Many chunks per level exercise the streamed relay/final markers."""
        dfs = build_pipeline_model(2, static_prefix=1)
        compiled = CompiledNet.compile(to_petri_net(dfs))
        sequential = explore_compiled(compiled, max_states=2000)
        for chunk_states in (1, 3, 17):
            sharded = explore_sharded(compiled, max_states=2000, workers=3,
                                      chunk_states=chunk_states)
            _assert_identical(sequential, sharded,
                              "chunk_states={}".format(chunk_states))

    def test_memo_on_off_and_disabled_stay_bit_identical(self):
        for name, dfs in _example_models():
            compiled = CompiledNet.compile(to_petri_net(dfs))
            sequential = explore_compiled(compiled, max_states=5000)
            for memo_size in (0, 2, 65536):
                sharded = explore_sharded(compiled, max_states=5000,
                                          workers=2, memo_size=memo_size)
                _assert_identical(sequential, sharded,
                                  "{} memo_size={}".format(name, memo_size))

    def test_both_backends_stay_bit_identical(self):
        """The pure-int and (when available) NumPy workers interchange."""
        dfs = build_pipeline_model(3, static_prefix=1, holes=[2])
        compiled = CompiledNet.compile(to_petri_net(dfs))
        for max_states in (50, 5000):
            sequential = explore_compiled(compiled, max_states=max_states)
            for batch in (False, None):
                sharded = explore_sharded(compiled, max_states=max_states,
                                          workers=2, batch=batch)
                _assert_identical(sequential, sharded,
                                  "batch={} max_states={}".format(
                                      batch, max_states))

    def test_exchange_stats_are_attached_and_consistent(self):
        dfs = build_pipeline_model(2, static_prefix=1)
        compiled = CompiledNet.compile(to_petri_net(dfs))
        with_memo = explore_sharded(compiled, max_states=5000, workers=2)
        without = explore_sharded(compiled, max_states=5000, workers=2,
                                  memo_size=0, batch=False)
        for stats in (with_memo.exchange_stats, without.exchange_stats):
            assert set(stats) == {"memo_hits", "foreign_refs", "levels",
                                  "chunk_messages"}
            assert stats["levels"] > 0
            assert stats["chunk_messages"] >= stats["levels"]
            assert stats["memo_hits"] <= stats["foreign_refs"]
        # Both backends route the same successors across shards.
        assert with_memo.exchange_stats["foreign_refs"] == \
            without.exchange_stats["foreign_refs"]
        assert without.exchange_stats["memo_hits"] == 0

    def test_memo_hits_on_reconvergent_graph(self):
        """Cross-level re-references must be answered from the memo."""
        compiled = CompiledNet.compile(
            to_petri_net(token_ring(registers=5, tokens=2)))
        sequential = explore_compiled(compiled)
        for batch in (False, None):
            sharded = explore_sharded(compiled, workers=3, batch=batch)
            _assert_identical(sequential, sharded,
                              "memo batch={}".format(batch))
            assert sharded.exchange_stats["memo_hits"] > 0

    def test_bounded_memo_keeps_hot_entries(self):
        """A tight bound must not evict the entries that actually get hit.

        The frequency/depth-aware eviction policy protects hit entries and
        old (shallow) entries, so even a memo a fraction of the working
        set's size retains most of the unbounded hit count -- where FIFO
        eviction used to flush hot shallow states every level.  The graph
        itself must stay bit-identical: the bound only affects hit rate.
        """
        compiled = CompiledNet.compile(
            to_petri_net(token_ring(registers=5, tokens=2)))
        sequential = explore_compiled(compiled)
        for batch in (False, None):
            ceiling = explore_sharded(
                compiled, workers=3, batch=batch).exchange_stats["memo_hits"]
            bounded = explore_sharded(compiled, workers=3, batch=batch,
                                      memo_size=64)
            _assert_identical(sequential, bounded,
                              "bounded memo batch={}".format(batch))
            hits = bounded.exchange_stats["memo_hits"]
            assert hits > 0
            assert hits >= ceiling // 2, \
                "batch={}: {} of {} ceiling hits survive a 64-entry " \
                "bound".format(batch, hits, ceiling)

    def test_default_memo_bound_reaches_pipeline_ceiling(self):
        """The stock 65536 bound must attain the family's analytic ceiling.

        On the depth-3 pipeline at three workers the cross-shard working
        set overflows the default bound (~191k states), and an unbounded
        memo answers exactly 1216 re-references.  The eviction policy has
        to deliver that same count under the bound -- and identically on
        both worker backends.
        """
        dfs = build_pipeline_model(3, static_prefix=1)
        compiled = CompiledNet.compile(to_petri_net(dfs))
        hits = {}
        for batch in (False, None):
            sharded = explore_sharded(compiled, max_states=200000, workers=3,
                                      batch=batch, memo_size=65536)
            hits[batch] = sharded.exchange_stats["memo_hits"]
        assert hits[False] == hits[None], hits
        assert hits[False] >= 1200, hits


# -- the supervised pool ------------------------------------------------------


def _quick_task(value):
    return value * 2


def _slow_task(seconds):
    time.sleep(seconds)
    return "done"


def _failing_task():
    raise RuntimeError("boom")


def _crashing_task():
    os._exit(17)


class TestSupervisor:
    def test_runs_tasks_and_returns_payloads_in_order(self):
        outcomes = run_supervised(
            [("a", _quick_task, (1,)), ("b", _quick_task, (2,))],
            parallelism=2)
        assert [outcome.task_id for outcome in outcomes] == ["a", "b"]
        assert [outcome.payload for outcome in outcomes] == [2, 4]
        assert all(outcome.ok for outcome in outcomes)

    def test_error_timeout_and_crash_containment(self):
        outcomes = run_supervised(
            [("err", _failing_task, ()),
             ("slow", _slow_task, (60,)),
             ("dead", _crashing_task, ())],
            parallelism=3, timeout=1.5)
        by_id = {outcome.task_id: outcome for outcome in outcomes}
        assert by_id["err"].status == "error"
        assert "boom" in by_id["err"].error
        assert by_id["slow"].status == "timeout"
        assert by_id["dead"].status == "crashed"
        assert "exit code 17" in by_id["dead"].error

    def test_stop_when_cancels_the_losers(self):
        outcomes = run_supervised(
            [("fast", _quick_task, (21,)), ("slow", _slow_task, (60,))],
            parallelism=2,
            stop_when=lambda outcome: outcome.ok and outcome.payload == 42)
        by_id = {outcome.task_id: outcome for outcome in outcomes}
        assert by_id["fast"].payload == 42
        assert by_id["slow"].status == "cancelled"

    def test_inline_mode_honours_stop_when(self):
        outcomes = run_supervised(
            [("first", _quick_task, (21,)), ("second", _quick_task, (5,))],
            parallelism=0,
            stop_when=lambda outcome: outcome.ok and outcome.payload == 42)
        assert outcomes[0].payload == 42
        assert outcomes[1].status == "cancelled"

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            run_supervised([("x", _quick_task, (1,)), ("x", _quick_task, (2,))],
                           parallelism=0)

    def test_outcome_repr_and_start_method(self):
        assert "cancelled" in repr(TaskOutcome("t", "cancelled"))
        assert start_method() in ("fork", "spawn", "forkserver")
        assert mp_context().get_start_method() == start_method()


# -- the racing portfolio -----------------------------------------------------


class TestRacingPortfolio:
    def test_race_never_contradicts_rotation(self):
        """Across the example family, racing and rotation verdicts agree."""
        for name, dfs in _example_models():
            rotation = Verifier(dfs, max_states=50000, checker="portfolio")
            racing = Verifier(
                dfs, max_states=50000, checker="portfolio",
                checker_options={"portfolio": {"race": True}})
            for check in ("verify_deadlock_freedom", "verify_safeness",
                          "verify_value_mutual_exclusion"):
                left = getattr(rotation, check)()
                right = getattr(racing, check)()
                assert left.holds == right.holds, (name, check)

    def test_race_finds_the_injected_hole_deadlock(self):
        holey = build_pipeline_model(4, static_prefix=1, holes=[3])
        result = Verifier(
            holey, max_states=50000, checker="portfolio",
            checker_options={"portfolio": {"race": True}},
        ).verify_deadlock_freedom()
        assert result.holds is False
        assert result.witnesses[0]["trace"]
        assert "won the race" in result.details

    def test_race_cancels_losers(self):
        """A conclusive winner reports the fate of every other member."""
        holey = build_pipeline_model(4, static_prefix=1, holes=[3])
        result = Verifier(
            holey, max_states=2000000, checker="portfolio",
            checker_options={"portfolio": {
                "race": True,
                "walk": {"walks": 64, "steps": 4096},
            }},
        ).verify_deadlock_freedom()
        assert result.holds is False
        # The exhaustive engine cannot finish >2M states before the walker
        # finds the hole; the race must have put it out of its misery.
        assert "exhaustive cancelled" in result.details


# -- the semiflow cache -------------------------------------------------------


class TestSemiflowCache:
    def test_warm_hit_is_bit_identical_to_cold(self, tmp_path):
        net = to_petri_net(build_pipeline_model(3, static_prefix=1))
        cache = SemiflowCache(str(tmp_path))
        cold = compute_semiflows_cached(net, cache=cache)
        assert len(cache) == 1
        warm = compute_semiflows_cached(net, cache=cache)
        direct = compute_semiflows(net)
        assert warm == cold == direct
        assert [s.to_payload() for s in warm] == [s.to_payload() for s in direct]

    def test_cache_accepts_directory_path(self, tmp_path):
        net = to_petri_net(token_ring())
        first = compute_semiflows_cached(net, cache=str(tmp_path))
        second = compute_semiflows_cached(net, cache=str(tmp_path))
        assert first == second

    def test_budget_exceeded_is_cached_and_replayed(self, tmp_path):
        net = to_petri_net(build_pipeline_model(2, static_prefix=1))
        cache = SemiflowCache(str(tmp_path))
        with pytest.raises(InvariantBudgetExceeded):
            compute_semiflows_cached(net, max_rows=1, cache=cache)
        assert len(cache) == 1  # the blow-up is remembered...
        with pytest.raises(InvariantBudgetExceeded):
            compute_semiflows_cached(net, max_rows=1, cache=cache)
        # ...and a different budget is a different cache entry.
        basis = compute_semiflows_cached(net, max_rows=20000, cache=cache)
        assert basis and len(cache) == 2

    def test_verifier_threads_the_cache_through(self, tmp_path):
        dfs = build_pipeline_model(2, static_prefix=1)
        cached = Verifier(dfs, checker="inductive",
                          semiflow_cache=str(tmp_path))
        summary = cached.verify_properties(("safeness", "exclusion"))
        assert summary.passed
        assert len(SemiflowCache(str(tmp_path))) == 1
        plain = Verifier(dfs, checker="inductive")
        warm = Verifier(dfs, checker="inductive",
                        semiflow_cache=str(tmp_path))
        left = plain.verify_properties(("safeness", "exclusion"))
        right = warm.verify_properties(("safeness", "exclusion"))
        for a, b in zip(left.results, right.results):
            assert a.holds == b.holds
            assert a.details == b.details

    def test_campaign_job_populates_semiflow_namespace(self, tmp_path):
        job = VerificationJob("j1", "pipeline",
                              kwargs={"stages": 2, "static_prefix": 1},
                              properties=("safeness", "exclusion"),
                              checker="inductive")
        cold = job.run(cache=str(tmp_path))
        semiflow_dir = tmp_path / "semiflows"
        assert semiflow_dir.is_dir() and len(SemiflowCache(str(semiflow_dir))) == 1
        warm = job.run(cache=str(tmp_path))
        assert warm["cache"] == "hit"
        assert warm["verdict"] == cold["verdict"]


# -- workers stay out of the cache identity ----------------------------------


class TestWorkersCacheIdentity:
    def test_workers_not_in_options_digest(self):
        base = dict(factory="pipeline", kwargs={"stages": 2, "static_prefix": 1})
        sequential = VerificationJob("a", workers=0, **base)
        sharded = VerificationJob("b", workers=4, **base)
        assert options_digest(sequential.options()) == \
            options_digest(sharded.options())

    def test_sharded_job_verdict_equals_sequential(self, tmp_path):
        """workers=N must answer from the cache entry a workers=0 run wrote."""
        base = dict(factory="pipeline",
                    kwargs={"stages": 2, "static_prefix": 1},
                    properties=("safeness", "deadlock"), max_states=500)
        cold = VerificationJob("a", workers=0, **base).run(cache=str(tmp_path))
        warm = VerificationJob("b", workers=2, **base).run(cache=str(tmp_path))
        assert warm["cache"] == "hit"
        assert warm["verdict"] == cold["verdict"]
        # And computed cold with workers, the verdict is byte-equal too.
        fresh = VerificationJob("c", workers=2, **base).run()
        assert fresh["verdict"] == cold["verdict"]

    def test_scenario_spec_threads_workers(self):
        jobs, _ = generate_scenarios(ScenarioSpec(depths=(2,), workers=3))
        assert jobs and all(job.workers == 3 for job in jobs)

    def test_fingerprint_reexports_stay_stable(self):
        net = to_petri_net(token_ring())
        from repro.campaign.cache import net_fingerprint as campaign_fingerprint
        assert campaign_fingerprint(net) == net_fingerprint(net)


# -- counterexample-guided walk restarts -------------------------------------


class TestWalkRestarts:
    def test_restarting_walker_still_finds_the_hole(self):
        holey = build_pipeline_model(3, static_prefix=1, holes=[2])
        result = Verifier(
            holey, checker="walk",
            checker_options={"walk": {"walks": 16, "steps": 256,
                                      "restarts": 4}},
        ).verify_deadlock_freedom()
        assert result.holds is False
        assert result.witnesses[0]["trace"]

    def test_restart_traces_replay_to_the_witness(self):
        """Witness traces from restarted walks must actually reach the state."""
        holey = build_pipeline_model(3, static_prefix=1, holes=[2])
        verifier = Verifier(
            holey, checker="walk",
            checker_options={"walk": {"walks": 16, "steps": 256,
                                      "restarts": 4}})
        result = verifier.verify_deadlock_freedom()
        compiled = CompiledNet.compile(verifier.net)
        for witness in result.witnesses:
            state = compiled.encode(verifier.net.initial_marking())
            for name in witness["trace"]:
                index = compiled.transition_index[name]
                assert compiled.is_enabled(index, state)
                state = compiled.fire(index, state)
            assert compiled.decode(state) == witness["marking"]

    def test_deterministic_per_seed(self):
        holey = build_pipeline_model(3, static_prefix=1, holes=[2])

        def run(seed):
            return Verifier(
                holey, checker="walk",
                checker_options={"walk": {"walks": 8, "steps": 128,
                                          "restarts": 4, "seed": seed}},
            ).verify_deadlock_freedom()

        first, second = run(0xBEEF), run(0xBEEF)
        assert first.holds == second.holds
        assert [w["trace"] for w in first.witnesses] == \
            [w["trace"] for w in second.witnesses]

    def test_restarts_zero_restores_prerestart_behaviour(self):
        holey = build_pipeline_model(3, static_prefix=1, holes=[2])
        result = Verifier(
            holey, checker="walk",
            checker_options={"walk": {"walks": 16, "steps": 256,
                                      "restarts": 0}},
        ).verify_deadlock_freedom()
        assert result.holds is False
