"""Tests for repro.dfs.validation and repro.dfs.examples."""

import pytest

from repro.dfs.examples import (
    conditional_comp_dfs,
    conditional_comp_sdfs,
    linear_pipeline,
    token_ring,
)
from repro.dfs.model import DataflowStructure
from repro.dfs.validation import Severity, has_errors, validate_structure


class TestValidation:
    def test_clean_model_has_no_errors(self, conditional_dfs):
        issues = validate_structure(conditional_dfs)
        assert not has_errors(issues)

    def test_combinational_cycle_is_an_error(self):
        dfs = DataflowStructure()
        dfs.add_logic("f")
        dfs.add_logic("g")
        dfs.add_register("r", marked=True)
        dfs.connect("f", "g")
        dfs.connect("g", "f")
        dfs.connect("r", "f")
        issues = validate_structure(dfs)
        assert any("combinational cycle" in issue.message for issue in issues)
        assert has_errors(issues)

    def test_dangling_logic_reported(self):
        dfs = DataflowStructure()
        dfs.add_logic("f")
        dfs.add_register("r", marked=True)
        dfs.connect("r", "f")
        issues = validate_structure(dfs)
        assert any("no postset" in issue.message for issue in issues)

    def test_logic_without_preset_is_an_error(self):
        dfs = DataflowStructure()
        dfs.add_logic("f")
        dfs.add_register("r")
        dfs.connect("f", "r")
        issues = validate_structure(dfs)
        assert any("no preset" in issue.message and issue.is_error for issue in issues)

    def test_uncontrolled_push_is_a_warning(self):
        dfs = DataflowStructure()
        dfs.add_register("a", marked=True)
        dfs.add_push("p")
        dfs.connect("a", "p")
        issues = validate_structure(dfs)
        warnings = [issue for issue in issues if issue.severity is Severity.WARNING]
        assert any("no control register" in issue.message for issue in warnings)

    def test_short_control_loop_is_an_error(self):
        dfs = DataflowStructure()
        dfs.add_control("c0", marked=True)
        dfs.add_control("c1")
        dfs.connect("c0", "c1")
        dfs.connect("c1", "c0")
        issues = validate_structure(dfs)
        assert any("fewer than 3 registers" in issue.message for issue in issues)

    def test_mixed_initial_control_values_is_an_error(self):
        dfs = DataflowStructure()
        dfs.add_control("ct", marked=True, value=True)
        dfs.add_control("cf", marked=True, value=False)
        dfs.add_push("p")
        dfs.add_register("src", marked=True)
        dfs.connect("src", "p")
        dfs.connect("ct", "p")
        dfs.connect("cf", "p")
        issues = validate_structure(dfs)
        assert any("both True and False" in issue.message for issue in issues)

    def test_isolated_node_is_a_warning(self):
        dfs = DataflowStructure()
        dfs.add_register("r", marked=True)
        dfs.add_register("lonely")
        dfs.add_logic("f")
        dfs.connect("r", "f")
        dfs.connect("f", "r")  # would be a self edge? no: r -> f -> r forms a loop
        issues = validate_structure(dfs)
        assert any("isolated" in issue.message for issue in issues)

    def test_registerless_model_is_an_error(self):
        dfs = DataflowStructure()
        dfs.add_logic("f")
        dfs.add_logic("g")
        dfs.connect("f", "g")
        assert has_errors(validate_structure(dfs))


class TestExamples:
    def test_conditional_dfs_node_types(self):
        dfs = conditional_comp_dfs()
        assert dfs.kind("ctrl").value == "control"
        assert dfs.kind("filt").value == "push"
        assert dfs.kind("out").value == "pop"

    def test_conditional_dfs_scales_with_comp_stages(self):
        small = conditional_comp_dfs(comp_stages=1)
        large = conditional_comp_dfs(comp_stages=4)
        assert len(large.nodes) == len(small.nodes) + 6

    def test_conditional_sdfs_is_static(self):
        from repro.sdfs.model import is_static
        assert is_static(conditional_comp_sdfs())

    def test_linear_pipeline_structure(self):
        dfs = linear_pipeline(stages=4)
        assert len(dfs.plain_registers) == 5
        assert len(dfs.logic_nodes) == 4
        assert dfs.input_registers() == ["r0"]
        assert dfs.output_registers() == ["r4"]

    def test_token_ring_token_count(self):
        dfs = token_ring(registers=5, tokens=2)
        marked = [name for name, flag in dfs.initial_marking().items() if flag]
        assert len(marked) == 2

    def test_token_ring_rejects_full_ring(self):
        with pytest.raises(ValueError):
            token_ring(registers=3, tokens=3)

    def test_examples_pass_structural_validation(self):
        for dfs in (conditional_comp_dfs(), conditional_comp_sdfs(),
                    linear_pipeline(), token_ring()):
            assert not has_errors(validate_structure(dfs))
