"""Tests for the DFS -> Petri net translation (Fig. 3 / Fig. 4)."""

from repro.dfs.model import DataflowStructure
from repro.dfs.translation import marking_to_dfs_state, place_name, to_petri_net
from repro.petri.analysis import invariant_value, place_invariants
from repro.petri.reachability import explore


class TestPlaceEncoding:
    def test_place_name_format(self):
        assert place_name("M", "ctrl", 1) == "M_ctrl_1"
        assert place_name("C", "f", 0) == "C_f_0"

    def test_logic_node_gets_one_variable(self, simple_chain):
        net = to_petri_net(simple_chain)
        assert net.has_place("C_f_0") and net.has_place("C_f_1")
        assert not net.has_place("Mt_f_0")

    def test_dynamic_register_gets_three_variables(self, conditional_dfs):
        net = to_petri_net(conditional_dfs)
        for kind in ("M", "Mt", "Mf"):
            assert net.has_place("{}_ctrl_0".format(kind))
            assert net.has_place("{}_ctrl_1".format(kind))

    def test_initial_marking_encodes_dfs_marking(self, simple_chain):
        net = to_petri_net(simple_chain)
        marking = net.initial_marking()
        assert marking["M_a_1"] == 1 and marking["M_a_0"] == 0
        assert marking["M_b_0"] == 1 and marking["M_b_1"] == 0
        assert marking["C_f_0"] == 1

    def test_initially_false_control_register(self):
        dfs = DataflowStructure()
        dfs.add_control("c", marked=True, value=False)
        marking = to_petri_net(dfs).initial_marking()
        assert marking["M_c_1"] == 1
        assert marking["Mf_c_1"] == 1
        assert marking["Mt_c_0"] == 1

    def test_transition_names_match_paper_style(self, conditional_dfs):
        net = to_petri_net(conditional_dfs)
        for name in ("Mt_ctrl+", "Mf_ctrl+", "Mt_filt+", "Mf_filt+", "C_cond+", "M_in-"):
            assert net.has_transition(name)


class TestTranslationSoundness:
    def test_variable_pairs_are_place_invariants(self, simple_chain):
        net = to_petri_net(simple_chain)
        invariants = place_invariants(net)
        pairs = [{"C_f_0", "C_f_1"}, {"M_a_0", "M_a_1"}, {"M_b_0", "M_b_1"}]
        for pair in pairs:
            assert any(set(invariant) == pair for invariant in invariants)

    def test_invariants_hold_over_reachable_states(self, conditional_dfs):
        net = to_petri_net(conditional_dfs)
        graph = explore(net)
        # Every complementary pair keeps exactly one token.
        for node in conditional_dfs.nodes:
            kinds = ("C",) if conditional_dfs.is_logic(node) else (
                ("M",) if not conditional_dfs.node(node).is_dynamic else ("M", "Mt", "Mf"))
            for kind in kinds:
                invariant = {place_name(kind, node, 0): 1, place_name(kind, node, 1): 1}
                values = {invariant_value(invariant, marking) for marking in graph.states}
                assert values == {1}

    def test_net_is_one_safe(self, conditional_dfs):
        graph = explore(to_petri_net(conditional_dfs))
        for marking in graph.states:
            assert all(count <= 1 for _, count in marking.items())

    def test_guard_literals_become_read_arcs(self, simple_chain):
        net = to_petri_net(simple_chain)
        # M_b+ requires C_f evaluated (read arc on C_f_1) and M_a marked.
        reads = net.read_places("M_b+")
        assert "C_f_1" in reads

    def test_marking_to_dfs_state_summary(self, conditional_dfs):
        net = to_petri_net(conditional_dfs)
        graph = explore(net)
        # Find a state where the control register holds a False token.
        target = graph.find(lambda m: m["Mf_ctrl_1"] > 0)
        assert target is not None
        summary = marking_to_dfs_state(conditional_dfs, target)
        assert summary["marked"]["ctrl"] is False


class TestTraceCompatibility:
    def test_dfs_trace_is_a_petri_net_firing_sequence(self, conditional_dfs):
        """The same event names must be fireable in both semantics."""
        from repro.dfs.simulation import DfsSimulator
        from repro.petri.simulation import PetriSimulator

        dfs_sim = DfsSimulator(conditional_dfs)
        trace = dfs_sim.run_random(150, seed=21)
        net_sim = PetriSimulator(to_petri_net(conditional_dfs))
        net_sim.fire_sequence(trace)  # raises if any step is not enabled

    def test_petri_trace_is_a_dfs_event_sequence(self, conditional_dfs):
        from repro.dfs.simulation import DfsSimulator
        from repro.petri.simulation import PetriSimulator

        net_sim = PetriSimulator(to_petri_net(conditional_dfs))
        trace = net_sim.run_random(150, seed=22)
        dfs_sim = DfsSimulator(conditional_dfs)
        dfs_sim.fire_sequence(trace)
