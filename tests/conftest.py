"""Shared fixtures: example models used across the test suite."""

import pytest

from repro.dfs.examples import (
    conditional_comp_dfs,
    conditional_comp_sdfs,
    linear_pipeline,
    token_ring,
)
from repro.dfs.model import DataflowStructure
from repro.pipelines.generic import build_generic_pipeline


@pytest.fixture
def conditional_dfs():
    """The motivating example of Fig. 1b (one comp stage)."""
    return conditional_comp_dfs(comp_stages=1)


@pytest.fixture
def conditional_sdfs():
    """The SDFS rendering of the motivating example (Fig. 1a)."""
    return conditional_comp_sdfs(comp_stages=1)


@pytest.fixture
def ring():
    """A 4-register token ring with one token."""
    return token_ring(registers=4, tokens=1)


@pytest.fixture
def pipeline3():
    """A 3-stage linear pipeline (no cycles)."""
    return linear_pipeline(stages=3)


@pytest.fixture
def small_reconfigurable_pipeline():
    """A 2-stage generic pipeline: one static stage plus one reconfigurable stage."""
    return build_generic_pipeline(2, static_prefix_stages=1, name="pipe2")


@pytest.fixture
def simple_chain():
    """A minimal register -> logic -> register chain."""
    dfs = DataflowStructure("chain")
    dfs.add_register("a", marked=True)
    dfs.add_logic("f")
    dfs.add_register("b")
    dfs.connect_chain("a", "f", "b")
    return dfs
