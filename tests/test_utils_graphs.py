"""Tests for repro.utils.graphs."""

from repro.utils.graphs import (
    enumerate_simple_cycles,
    reachable_from,
    strongly_connected_components,
    topological_order,
)


class TestEnumerateSimpleCycles:
    def test_single_cycle(self):
        cycles = enumerate_simple_cycles([("a", "b"), ("b", "c"), ("c", "a")])
        assert len(cycles) == 1
        assert set(cycles[0]) == {"a", "b", "c"}

    def test_acyclic_graph_has_no_cycles(self):
        assert enumerate_simple_cycles([("a", "b"), ("b", "c")]) == []

    def test_two_cycles(self):
        edges = [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")]
        cycles = enumerate_simple_cycles(edges)
        assert len(cycles) == 2

    def test_limit_caps_enumeration(self):
        edges = [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")]
        assert len(enumerate_simple_cycles(edges, limit=1)) == 1


class TestStronglyConnectedComponents:
    def test_cycle_forms_single_component(self):
        components = strongly_connected_components([("a", "b"), ("b", "a"), ("b", "c")])
        assert {"a", "b"} in components
        assert {"c"} in components

    def test_isolated_nodes_included(self):
        components = strongly_connected_components([], nodes=["x", "y"])
        assert {"x"} in components and {"y"} in components


class TestReachableFrom:
    def test_simple_chain(self):
        edges = [("a", "b"), ("b", "c"), ("d", "e")]
        assert reachable_from(edges, ["a"]) == {"a", "b", "c"}

    def test_multiple_sources(self):
        edges = [("a", "b"), ("d", "e")]
        assert reachable_from(edges, ["a", "d"]) == {"a", "b", "d", "e"}

    def test_unknown_source_ignored(self):
        assert reachable_from([("a", "b")], ["zzz"]) == set()


class TestTopologicalOrder:
    def test_orders_a_dag(self):
        order = topological_order([("a", "b"), ("b", "c")])
        assert order.index("a") < order.index("b") < order.index("c")

    def test_returns_none_for_cycle(self):
        assert topological_order([("a", "b"), ("b", "a")]) is None

    def test_includes_isolated_nodes(self):
        order = topological_order([("a", "b")], nodes=["a", "b", "z"])
        assert set(order) == {"a", "b", "z"}
