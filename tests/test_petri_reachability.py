"""Tests for repro.petri.reachability and repro.petri.simulation."""

import pytest

from repro.exceptions import SimulationError, VerificationError
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import explore
from repro.petri.simulation import PetriSimulator, random_trace


def ring_net(places=3, tokens=1):
    """A ring of places and transitions (a free-choice marked graph)."""
    net = PetriNet("ring")
    for index in range(places):
        net.add_place("p{}".format(index), tokens=1 if index < tokens else 0)
        net.add_transition("t{}".format(index))
    for index in range(places):
        net.add_arc("p{}".format(index), "t{}".format(index))
        net.add_arc("t{}".format(index), "p{}".format((index + 1) % places))
    return net


def dead_end_net():
    """p -> t -> q and then nothing: q is a deadlock."""
    net = PetriNet("dead")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    return net


class TestExplore:
    def test_ring_state_count(self):
        graph = explore(ring_net())
        # The single token can sit in any of the three places.
        assert len(graph) == 3
        assert not graph.truncated

    def test_deadlock_detection(self):
        graph = explore(dead_end_net())
        deadlocks = graph.deadlocks()
        assert deadlocks == [Marking({"q": 1})]

    def test_ring_has_no_deadlock(self):
        assert explore(ring_net()).deadlocks() == []

    def test_trace_to_reaches_target(self):
        net = dead_end_net()
        graph = explore(net)
        trace = graph.trace_to(Marking({"q": 1}))
        assert trace == ["t"]

    def test_trace_to_initial_is_empty(self):
        graph = explore(ring_net())
        assert graph.trace_to(graph.initial_marking) == []

    def test_trace_to_unreachable_raises(self):
        graph = explore(ring_net())
        with pytest.raises(VerificationError):
            graph.trace_to(Marking({"p0": 5}))

    def test_truncation_flag(self):
        graph = explore(ring_net(places=6), max_states=2)
        assert graph.truncated
        assert len(graph) <= 3

    def test_successors_and_predecessors(self):
        graph = explore(ring_net())
        initial = graph.initial_marking
        successors = graph.successors(initial)
        assert len(successors) == 1
        transition, target = successors[0]
        assert transition == "t0"
        assert (transition, initial) in graph.predecessors(target)

    def test_find_and_filter(self):
        graph = explore(ring_net())
        found = graph.find(lambda m: m["p2"] > 0)
        assert found is not None
        assert len(graph.filter(lambda m: True)) == len(graph)


class TestTruncationSemantics:
    """Regression tests: truncation must not fabricate graph structure.

    Before the fix, hitting ``max_states`` returned mid-expansion: the
    remaining enabled transitions of the current state were dropped (even
    edges to already-known states), and every never-expanded state sat in
    the graph with an empty successor list -- i.e. as a phantom deadlock.
    """

    def test_truncated_graph_has_no_phantom_deadlocks(self):
        # A deadlock-free ring truncated at any bound must report none.
        for max_states in (1, 2, 3, 4, 5):
            graph = explore(ring_net(places=6), max_states=max_states)
            assert graph.truncated
            assert graph.deadlocks() == []

    def test_frontier_states_are_flagged(self):
        graph = explore(ring_net(places=6), max_states=2)
        assert graph.frontier
        for marking in graph.frontier:
            assert not graph.is_expanded(marking)
            assert marking in graph

    def test_non_truncated_graph_has_empty_frontier(self):
        graph = explore(ring_net())
        assert graph.frontier == set()
        assert all(graph.is_expanded(m) for m in graph.states)

    def test_edges_between_known_states_are_recorded(self):
        # Two tokens in a 3-ring: states interleave, so a state hit after
        # truncation still has edges back into the discovered set.  Every
        # recorded state must carry every edge to another recorded state.
        net = ring_net(places=3, tokens=2)
        full = explore(net)
        truncated = explore(net, max_states=2)
        known = set(truncated.states)
        for marking in truncated.states:
            expected = [
                (t, m) for t, m in full.successors(marking) if m in known
            ]
            assert truncated.successors(marking) == expected

    def test_truncated_expanded_states_have_complete_edges(self):
        net = ring_net(places=6)
        graph = explore(net, max_states=3)
        for marking in graph.states:
            if graph.is_expanded(marking):
                assert graph.enabled(marking) == net.enabled_transitions(marking)


class TestSimulator:
    def test_fire_and_undo(self):
        simulator = PetriSimulator(dead_end_net())
        simulator.fire("t")
        assert simulator.marking == Marking({"q": 1})
        assert simulator.undo() == "t"
        assert simulator.marking == Marking({"p": 1})

    def test_fire_disabled_raises(self):
        simulator = PetriSimulator(dead_end_net())
        simulator.fire("t")
        with pytest.raises(SimulationError):
            simulator.fire("t")

    def test_undo_without_history_raises(self):
        with pytest.raises(SimulationError):
            PetriSimulator(ring_net()).undo()

    def test_random_run_stops_on_deadlock(self):
        simulator = PetriSimulator(dead_end_net())
        fired = simulator.run_random(10, seed=0)
        assert fired == ["t"]
        assert simulator.is_deadlocked()

    def test_random_run_is_reproducible(self):
        first, _ = random_trace(ring_net(places=5, tokens=2), steps=20, seed=42)
        second, _ = random_trace(ring_net(places=5, tokens=2), steps=20, seed=42)
        assert first == second

    def test_reset_restores_initial_marking(self):
        simulator = PetriSimulator(ring_net())
        simulator.run_random(5, seed=1)
        simulator.reset()
        assert simulator.marking == ring_net().initial_marking()
        assert simulator.trace == []

    def test_fire_sequence(self):
        simulator = PetriSimulator(ring_net())
        simulator.fire_sequence(["t0", "t1", "t2"])
        assert simulator.marking == ring_net().initial_marking()
