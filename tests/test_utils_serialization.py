"""Tests for repro.utils.serialization."""

import os

import pytest

from repro.exceptions import SerializationError
from repro.utils.serialization import dump_json, expect_format, load_json


class TestDumpAndLoad:
    def test_round_trip_via_string(self):
        document = {"format": "demo", "values": [1, 2, 3]}
        text = dump_json(document)
        assert load_json(text) == document

    def test_round_trip_via_file(self, tmp_path):
        path = os.path.join(str(tmp_path), "nested", "doc.json")
        document = {"format": "demo", "name": "x"}
        written = dump_json(document, path=path)
        assert written == path
        assert load_json(path) == document

    def test_malformed_json_raises(self):
        with pytest.raises(SerializationError):
            load_json("{not json")

    def test_load_from_nonexistent_path_treats_as_text(self):
        with pytest.raises(SerializationError):
            load_json("/definitely/not/a/file.json")


class TestExpectFormat:
    def test_accepts_matching_format(self):
        document = {"format": "repro-dfs"}
        assert expect_format(document, "repro-dfs") is document

    def test_rejects_wrong_format(self):
        with pytest.raises(SerializationError):
            expect_format({"format": "other"}, "repro-dfs")

    def test_rejects_non_dict(self):
        with pytest.raises(SerializationError):
            expect_format(["not", "a", "dict"], "repro-dfs")
