"""Tests for the component-level circuit simulator."""

import pytest

from repro.exceptions import CircuitError
from repro.circuits.simulation import CircuitSimulator
from repro.dfs.examples import conditional_comp_dfs, token_ring


class TestCircuitSimulator:
    def test_run_produces_tokens_and_energy(self, conditional_dfs):
        simulator = CircuitSimulator(conditional_dfs, seed=1)
        stats = simulator.run("out", token_goal=10)
        assert stats.tokens == 10
        assert stats.elapsed_ns > 0
        assert stats.dynamic_energy_pj > 0
        assert stats.leakage_energy_pj > 0
        assert stats.energy_pj == pytest.approx(
            stats.dynamic_energy_pj + stats.leakage_energy_pj)

    def test_voltage_scaling_slows_and_saves_energy(self, conditional_dfs):
        nominal = CircuitSimulator(conditional_dfs, seed=2).run("out", token_goal=10)
        scaled = CircuitSimulator(conditional_dfs, delay_scale=4.0, energy_scale=0.25,
                                  seed=2).run("out", token_goal=10)
        assert scaled.elapsed_ns > nominal.elapsed_ns
        assert scaled.dynamic_energy_pj < nominal.dynamic_energy_pj

    def test_cycle_time_and_throughput_consistent(self):
        ring = token_ring(registers=4, tokens=1)
        stats = CircuitSimulator(ring, seed=0).run("r0", token_goal=8)
        assert stats.cycle_time_ns == pytest.approx(stats.elapsed_ns / stats.tokens)
        assert stats.throughput_mhz == pytest.approx(1e3 / stats.cycle_time_ns)

    def test_unknown_observation_register(self, conditional_dfs):
        with pytest.raises(CircuitError):
            CircuitSimulator(conditional_dfs).run("missing")

    def test_original_model_delays_untouched(self, conditional_dfs):
        before = {name: conditional_dfs.node(name).delay for name in conditional_dfs.nodes}
        CircuitSimulator(conditional_dfs, seed=0).run("out", token_goal=5)
        after = {name: conditional_dfs.node(name).delay for name in conditional_dfs.nodes}
        assert before == after

    def test_false_heavy_workload_is_cheaper(self):
        model = conditional_comp_dfs(comp_stages=3)
        all_false = CircuitSimulator(model, choice_policy=lambda n, i: False, seed=3)
        all_true = CircuitSimulator(model, choice_policy=lambda n, i: True, seed=3)
        false_stats = all_false.run("out", token_goal=12)
        true_stats = all_true.run("out", token_goal=12)
        assert false_stats.elapsed_ns < true_stats.elapsed_ns
        assert false_stats.dynamic_energy_pj < true_stats.dynamic_energy_pj
