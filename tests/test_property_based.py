"""Property-based tests (hypothesis) on the core data structures and models."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.lfsr import Lfsr
from repro.dfs.examples import conditional_comp_dfs, token_ring
from repro.dfs.serialization import dfs_from_document, dfs_to_document
from repro.dfs.simulation import DfsSimulator
from repro.dfs.translation import to_petri_net
from repro.ope.functional import OpePipelineFunctional
from repro.ope.reference import OpeReference, ordinal_ranks
from repro.petri.marking import Marking
from repro.petri.simulation import PetriSimulator
from repro.silicon.voltage import VoltageModel


# -- markings ------------------------------------------------------------------

place_names = st.sampled_from(["p0", "p1", "p2", "p3", "p4"])
markings = st.dictionaries(place_names, st.integers(min_value=0, max_value=3))


@given(markings)
def test_marking_round_trip_through_dict(tokens):
    marking = Marking(tokens)
    assert Marking(marking.as_dict()) == marking


@given(markings, place_names)
def test_marking_add_then_remove_is_identity(tokens, place):
    marking = Marking(tokens)
    assert marking.add(place).remove(place) == marking


@given(markings, markings)
def test_marking_covers_is_reflexive_and_monotone(a, b):
    first = Marking(a)
    assert first.covers(first)
    union = {place: max(a.get(place, 0), b.get(place, 0)) for place in set(a) | set(b)}
    assert Marking(union).covers(first)


# -- ordinal pattern encoding -----------------------------------------------------

streams = st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=60)


@given(streams)
def test_ordinal_ranks_is_a_permutation(stream):
    ranks = ordinal_ranks(stream)
    assert sorted(ranks) == list(range(1, len(stream) + 1))


@given(streams, st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_functional_pipeline_matches_reference(stream, depth):
    assert OpePipelineFunctional(depth).process(stream) == OpeReference(depth).encode(stream)


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=30))
def test_rank_of_smallest_item_is_one(window):
    ranks = ordinal_ranks(window)
    smallest_index = window.index(min(window))
    assert ranks[smallest_index] == 1


# -- LFSR ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=0xFFFF))
@settings(max_examples=40)
def test_lfsr_never_produces_zero_and_is_deterministic(seed):
    first = Lfsr(seed=seed).stream(64)
    second = Lfsr(seed=seed).stream(64)
    assert first == second
    assert all(value != 0 for value in first)


# -- voltage model --------------------------------------------------------------------

@given(st.floats(min_value=0.4, max_value=1.6), st.floats(min_value=0.4, max_value=1.6))
@settings(max_examples=60)
def test_voltage_model_delay_is_monotone(v1, v2):
    model = VoltageModel()
    low, high = sorted((v1, v2))
    assert model.delay_scale(low) >= model.delay_scale(high) - 1e-12
    assert model.energy_scale(low) <= model.energy_scale(high) + 1e-12


# -- DFS serialization and semantics ----------------------------------------------------

@given(st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_dfs_document_round_trip(comp_stages):
    original = conditional_comp_dfs(comp_stages=comp_stages)
    restored = dfs_from_document(dfs_to_document(original))
    assert restored.nodes.keys() == original.nodes.keys()
    assert restored.edges == original.edges


@given(st.integers(min_value=0, max_value=2 ** 32 - 1), st.integers(min_value=20, max_value=80))
@settings(max_examples=20, deadline=None)
def test_random_dfs_trace_replays_on_petri_net(seed, steps):
    """Any token-game trace is a firing sequence of the translated net."""
    dfs = conditional_comp_dfs()
    simulator = DfsSimulator(dfs)
    trace = simulator.run_random(steps, seed=seed)
    PetriSimulator(to_petri_net(dfs)).fire_sequence(trace)


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
@settings(max_examples=20, deadline=None)
def test_token_ring_random_walk_keeps_invariant(seed):
    ring = token_ring(registers=5, tokens=2)
    simulator = DfsSimulator(ring)
    rng = random.Random(seed)
    registers = len(ring.register_nodes)
    for _ in range(60):
        if simulator.step_random(rng) is None:
            break
        assert 1 <= simulator.state.token_count() <= registers - 1
