"""Tests for the DFS token-game simulator and state object."""

import pytest

from repro.exceptions import SimulationError
from repro.dfs.simulation import DfsSimulator
from repro.dfs.state import DfsState


class TestDfsState:
    def test_initial_state_reflects_marking(self, conditional_dfs):
        state = DfsState(conditional_dfs)
        assert not state.is_marked("in")
        assert not state.is_evaluated("cond")
        assert state.token_count() == 0

    def test_initial_value_of_marked_control(self):
        from repro.dfs.model import DataflowStructure
        dfs = DataflowStructure()
        dfs.add_control("c", marked=True, value=False)
        state = DfsState(dfs)
        assert state.is_marked("c")
        assert state.token_value("c") is False

    def test_freeze_is_hashable_and_stable(self, simple_chain):
        state = DfsState(simple_chain)
        assert state.freeze() == DfsState(simple_chain).freeze()
        assert isinstance(hash(state.freeze()), int)

    def test_copy_is_independent(self, simple_chain):
        state = DfsState(simple_chain)
        clone = state.copy()
        clone.marked["a"] = False
        assert state.marked["a"] is True

    def test_describe_mentions_marked_registers(self, simple_chain):
        assert "a" in DfsState(simple_chain).describe()


class TestSimulator:
    def test_fire_unknown_event_raises(self, simple_chain):
        simulator = DfsSimulator(simple_chain)
        with pytest.raises(SimulationError):
            simulator.fire("M_zzz+")

    def test_fire_disabled_event_raises(self, simple_chain):
        simulator = DfsSimulator(simple_chain)
        with pytest.raises(SimulationError):
            simulator.fire("M_b+")  # b needs f evaluated first

    def test_token_propagates_along_chain(self, simple_chain):
        simulator = DfsSimulator(simple_chain)
        simulator.fire_sequence(["C_f+", "M_b+", "M_a-"])
        assert simulator.state.is_marked("b")
        assert not simulator.state.is_marked("a")

    def test_reset_restores_initial_state(self, simple_chain):
        simulator = DfsSimulator(simple_chain)
        simulator.fire("C_f+")
        simulator.reset()
        assert not simulator.state.is_evaluated("f")
        assert simulator.trace == []

    def test_random_run_reproducible(self, conditional_dfs):
        first = DfsSimulator(conditional_dfs).run_random(100, seed=7)
        second = DfsSimulator(conditional_dfs).run_random(100, seed=7)
        assert first == second

    def test_random_run_never_deadlocks_on_conditional(self, conditional_dfs):
        simulator = DfsSimulator(conditional_dfs)
        simulator.run_random(300, seed=11)
        assert not simulator.is_deadlocked()

    def test_choice_policy_forces_value(self, conditional_dfs):
        simulator = DfsSimulator(conditional_dfs, choice_policy=lambda node, idx: False)
        simulator.fire_sequence(["M_in+", "C_cond+"])
        enabled = simulator.enabled_events()
        assert "Mf_ctrl+" in enabled
        assert "Mt_ctrl+" not in enabled

    def test_tokens_produced_counts_marking_events(self, conditional_dfs):
        simulator = DfsSimulator(conditional_dfs)
        simulator.run_random(200, seed=3)
        count = simulator.tokens_produced("out")
        assert count >= 1
        expected = sum(1 for name in simulator.trace if name in ("Mt_out+", "Mf_out+"))
        assert count == expected

    def test_token_ring_never_empties_or_fills(self, ring):
        """A ring can neither lose its token nor fill every register.

        With the spread-token register semantics the number of marked
        registers fluctuates while a token is being copied downstream, but
        the ring must always keep at least one marked register (the token
        cannot vanish) and at least one unmarked register (a token can only
        move into a hole).
        """
        import random
        simulator = DfsSimulator(ring)
        rng = random.Random(5)
        registers = len(ring.register_nodes)
        for _ in range(150):
            if simulator.step_random(rng) is None:
                break
            count = simulator.state.token_count()
            assert 1 <= count <= registers - 1
