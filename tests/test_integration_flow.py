"""End-to-end integration tests: the full design flow of the paper.

model -> structural validation -> verification -> performance analysis ->
technology mapping -> Verilog export -> silicon measurements, exercised on
the motivating example and on a small reconfigurable OPE pipeline.
"""

from repro.chip.top import ChipConfig, OpeChip
from repro.circuits.mapping import SyncStyle
from repro.circuits.verilog import to_verilog
from repro.dfs.examples import conditional_comp_dfs
from repro.dfs.serialization import dfs_from_json, dfs_to_json
from repro.dfs.validation import has_errors, validate_structure
from repro.ope.circuit import ope_netlist
from repro.ope.pipeline import build_reconfigurable_ope_pipeline
from repro.performance.analyzer import PerformanceAnalyzer
from repro.verification.verifier import Verifier
from repro.workcraft.project import Project


class TestMotivatingExampleFlow:
    def test_full_flow(self, tmp_path):
        # 1. Model capture and persistence.
        dfs = conditional_comp_dfs(comp_stages=2)
        path = str(tmp_path / "conditional.json")
        dfs_to_json(dfs, path=path)
        dfs = dfs_from_json(path)

        # 2. Structural validation.
        assert not has_errors(validate_structure(dfs))

        # 3. Formal verification through the Petri-net semantics.
        summary = Verifier(dfs).verify_all(include_persistence=False)
        assert summary.passed

        # 4. Performance analysis.
        report = PerformanceAnalyzer(dfs).analyse()
        assert report is not None

        # 5. Technology mapping and Verilog export.
        from repro.circuits.mapping import map_dfs_to_netlist
        netlist = map_dfs_to_netlist(dfs)
        verilog = to_verilog(netlist)
        assert "module" in verilog and "push_register" in verilog


class TestOpePipelineFlow:
    def test_small_reconfigurable_ope_flow(self):
        pipeline, configuration = build_reconfigurable_ope_pipeline(stages=3, depth=3)

        # Structural validation and configuration sanity.
        assert not has_errors(validate_structure(pipeline.dfs))
        assert configuration.validate() == []

        # Verification of the fully-included configuration.
        verifier = Verifier(pipeline.dfs, max_states=500000)
        assert verifier.verify_deadlock_freedom().holds is True
        assert verifier.verify_control_mismatch().holds is True

        # Mapping with the fabricated (daisy-chain) synchronisation style.
        netlist = ope_netlist(pipeline, sync_style=SyncStyle.DAISY_CHAIN)
        assert netlist.total_area() > 0

    def test_reconfigured_depth_still_verifies(self):
        pipeline, configuration = build_reconfigurable_ope_pipeline(stages=3, depth=3,
                                                                    min_depth=2)
        configuration.set_depth(2)
        assert configuration.current_depth() == 2
        verifier = Verifier(pipeline.dfs, max_states=500000)
        assert verifier.verify_deadlock_freedom().holds is True


class TestChipLevelFlow:
    def test_chip_measurements_consistent_with_functional_model(self):
        chip = OpeChip()
        chip.set_config(ChipConfig.RECONFIGURABLE)
        chip.set_depth(6)
        run = chip.run_random(seed=0x5EED, count=800)
        assert run["checksum"] == chip.behavioural_checksum(seed=0x5EED, count=800)
        measurement = chip.measure(1_000_000, 0.8)
        assert measurement.computation_time_s > 0

    def test_project_workspace_holds_the_whole_design(self, tmp_path):
        project = Project("ope_design")
        project.add("conditional", conditional_comp_dfs())
        pipeline, _ = build_reconfigurable_ope_pipeline(stages=3, depth=3)
        project.add("ope3", pipeline.dfs)
        directory = str(tmp_path / "ws")
        project.save(directory)
        restored = Project.load(directory)
        assert set(restored.names()) == {"conditional", "ope3"}
        assert restored.run("ope3", "validate") is not None
