"""Tests for the evaluation chip: LFSR, accumulator, top level and testbench."""

import pytest

from repro.exceptions import ConfigurationError
from repro.chip.accumulator import ChecksumAccumulator
from repro.chip.lfsr import Lfsr
from repro.chip.testbench import (
    depth_scaling_experiment,
    random_mode_experiment,
    unstable_supply_experiment,
    voltage_sweep_experiment,
)
from repro.chip.top import ChipConfig, ChipMode, OpeChip
from repro.ope.reference import OpeReference


class TestLfsr:
    def test_deterministic_stream(self):
        assert Lfsr(seed=0xACE1).stream(20) == Lfsr(seed=0xACE1).stream(20)

    def test_different_seeds_differ(self):
        assert Lfsr(seed=1).stream(20) != Lfsr(seed=2).stream(20)

    def test_values_fit_width(self):
        assert all(0 < value < (1 << 16) for value in Lfsr(seed=3).stream(1000))

    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            Lfsr(seed=0)
        with pytest.raises(ConfigurationError):
            Lfsr(seed=0x10000)  # masks to zero for a 16-bit register

    def test_reset_reproduces_sequence(self):
        lfsr = Lfsr(seed=0xBEEF)
        first = lfsr.stream(10)
        lfsr.reset()
        assert lfsr.stream(10) == first

    def test_no_short_cycles(self):
        lfsr = Lfsr(seed=0xACE1)
        seen = set()
        for value in lfsr.iter_stream(5000):
            assert value not in seen
            seen.add(value)

    def test_period_of_default_taps_is_maximal(self):
        assert Lfsr(width=16).period == (1 << 16) - 1
        assert Lfsr(width=8, seed=0x5A).period == (1 << 8) - 1

    def test_period_of_maximal_custom_taps_is_measured(self):
        # 0x8E is a maximal 8-bit polynomial that is NOT the default (0xB8),
        # so it cannot hit the default-taps fast path and must be measured.
        assert 0x8E != Lfsr(width=8, seed=1).taps
        lfsr = Lfsr(width=8, seed=1, taps=0x8E)
        assert lfsr.period == (1 << 8) - 1

    def test_period_of_non_maximal_taps_is_not_overstated(self):
        # x^8 + x^1 (taps 0x80... choose 0xC0: x^8+x^7) is non-primitive for
        # width 8; the measured period must be the true cycle length, which
        # the sequence then actually honours.
        lfsr = Lfsr(width=8, seed=1, taps=0xC0)
        period = lfsr.period
        assert 0 < period < (1 << 8) - 1
        values = lfsr.stream(2 * period)
        assert values[:period] == values[period:]

    def test_reseeding_invalidates_cached_period(self):
        # Non-primitive taps split the state space into several cycles; a
        # new seed may sit on a different-length cycle, so the cached period
        # must not survive reset(new_seed).
        lfsr = Lfsr(width=8, seed=1, taps=0xC0)
        first = lfsr.period
        lfsr.reset(91)
        assert lfsr.period != first
        lfsr.reset()  # same seed: cache may persist, value must match
        assert lfsr.period == lfsr.period

    def test_measured_period_matches_brute_force(self):
        for taps in (0xC0, 0xA0, 0x96):
            lfsr = Lfsr(width=8, seed=1, taps=taps)
            state = start = 1
            for steps in range(1, (1 << 9) + 1):
                state = lfsr._step_state(state)
                if state == start:
                    break
            assert lfsr.period == steps

    def test_unsupported_width_needs_taps(self):
        with pytest.raises(ConfigurationError):
            Lfsr(seed=1, width=12)
        assert Lfsr(seed=1, width=12, taps=0x829).next() > 0


class TestAccumulator:
    def test_matches_reference_checksum(self):
        stream = Lfsr(seed=0x1234).stream(300)
        reference = OpeReference(6)
        accumulator = ChecksumAccumulator()
        for ranks in reference.encode(stream):
            accumulator.add_rank_list(ranks)
        assert accumulator.digest() == reference.checksum(stream)

    def test_reset(self):
        accumulator = ChecksumAccumulator()
        accumulator.add_rank_list([1, 2, 3])
        accumulator.reset()
        assert accumulator.digest() == 0
        assert accumulator.ranks_accumulated == 0

    def test_order_sensitivity(self):
        a = ChecksumAccumulator()
        b = ChecksumAccumulator()
        a.add_rank_list([1, 2])
        b.add_rank_list([2, 1])
        assert a.digest() != b.digest()

    def test_digest_stays_within_modulus(self):
        accumulator = ChecksumAccumulator()
        for rank in range(10000):
            assert accumulator.add_rank(rank % 19) < 2 ** 32


class TestOpeChip:
    def test_random_mode_checksum_matches_behavioural_model(self):
        chip = OpeChip()
        chip.set_mode(ChipMode.RANDOM)
        for config, depth in ((ChipConfig.STATIC, None), (ChipConfig.RECONFIGURABLE, 6)):
            chip.set_config(config)
            if depth:
                chip.set_depth(depth)
            run = chip.run_random(seed=0xACE1, count=600)
            assert run["checksum"] == chip.behavioural_checksum(seed=0xACE1, count=600)

    def test_static_config_ignores_depth_setting(self):
        chip = OpeChip()
        chip.set_depth(5)
        chip.set_config(ChipConfig.STATIC)
        assert chip.depth == chip.stages

    def test_depth_bounds(self):
        chip = OpeChip()
        with pytest.raises(ConfigurationError):
            chip.set_depth(2)
        with pytest.raises(ConfigurationError):
            chip.set_depth(19)

    def test_normal_mode_processes_external_stream(self):
        chip = OpeChip()
        chip.set_mode(ChipMode.NORMAL)
        chip.set_config(ChipConfig.RECONFIGURABLE)
        chip.set_depth(4)
        stream = [5, 3, 8, 1, 9, 2]
        assert chip.process_stream(stream) == OpeReference(4).encode(stream)

    def test_run_random_requires_random_mode(self):
        chip = OpeChip()
        chip.set_mode(ChipMode.NORMAL)
        with pytest.raises(ConfigurationError):
            chip.run_random(seed=1, count=10)

    def test_measure_reconfigurable_slower_than_static(self):
        chip = OpeChip()
        static = chip.measure(1_000_000, 1.2, config=ChipConfig.STATIC)
        reconfigurable = chip.measure(1_000_000, 1.2, config=ChipConfig.RECONFIGURABLE,
                                      depth=18)
        assert reconfigurable.computation_time_s > static.computation_time_s
        assert reconfigurable.consumed_energy_j > static.consumed_energy_j

    def test_silicon_model_cache_reuse(self):
        chip = OpeChip()
        first = chip.silicon_model(config=ChipConfig.STATIC)
        second = chip.silicon_model(config=ChipConfig.STATIC)
        assert first is second


class TestTestbenchExperiments:
    def test_random_mode_experiment_validates_checksum(self):
        result = random_mode_experiment(count=2000, functional_count=400, depth=6)
        assert result["checksum_ok"]
        assert result["computation_time_s"] > 0

    def test_voltage_sweep_reproduces_reference_and_overheads(self):
        result = voltage_sweep_experiment(items=16_000_000, voltages=(0.5, 1.2, 1.6))
        assert result["reference_time_s"] == pytest.approx(1.22, rel=0.02)
        assert result["reference_energy_j"] == pytest.approx(2.74e-3, rel=0.02)
        nominal = [row for row in result["rows"] if row["voltage"] == 1.2][0]
        assert nominal["time_overhead"] == pytest.approx(0.36, abs=0.02)
        assert nominal["energy_overhead"] == pytest.approx(0.05, abs=0.01)

    def test_voltage_sweep_trends(self):
        rows = voltage_sweep_experiment(items=1_000_000,
                                        voltages=(0.5, 0.8, 1.2, 1.6))["rows"]
        times = [row["static_time_s"] for row in rows]
        energies = [row["static_energy_j"] for row in rows]
        assert times == sorted(times, reverse=True)      # slower at low voltage
        assert energies == sorted(energies)              # cheaper at low voltage

    def test_unstable_supply_freezes_and_completes(self):
        result = unstable_supply_experiment()
        assert result["completed"]
        assert result["frozen_interval_s"] > 0
        assert result["trace"]

    def test_depth_scaling_is_linear(self):
        result = depth_scaling_experiment(depths=[4, 8, 12, 16], voltages=(1.2,),
                                          items=1_000_000)
        rows = [row for row in result["rows"] if row["voltage"] == 1.2]
        times = [row["computation_time_s"] for row in rows]
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(delta > 0 for delta in deltas)
        assert max(deltas) == pytest.approx(min(deltas), rel=1e-6)

    def test_depth_scaling_slope_inverse_to_voltage(self):
        result = depth_scaling_experiment(depths=[6, 12], voltages=(0.6, 1.2),
                                          items=1_000_000)
        slopes = {}
        for voltage in (0.6, 1.2):
            rows = [row for row in result["rows"] if row["voltage"] == voltage]
            slopes[voltage] = rows[1]["computation_time_s"] - rows[0]["computation_time_s"]
        assert slopes[0.6] > slopes[1.2]
