"""Tests for the verification engine (deadlock, mismatch, persistence...)."""

from repro.dfs.examples import conditional_comp_dfs, token_ring
from repro.dfs.model import DataflowStructure
from repro.verification.properties import (
    consistency_violation_expression,
    control_mismatch_expression,
    variable_consistency_pairs,
)
from repro.verification.verifier import Verifier


def deadlocking_model():
    """Two registers in mutual wait: an empty ring of length 2 via logic.

    A two-register loop with no token can never move: marking either register
    requires the other one to be marked first.
    """
    dfs = DataflowStructure("deadlock")
    dfs.add_register("a")
    dfs.add_register("b")
    dfs.add_logic("f")
    dfs.add_logic("g")
    dfs.connect_chain("a", "f", "b")
    dfs.connect_chain("b", "g", "a")
    return dfs


def mismatch_model():
    """A push guarded by two control registers initialised with opposite values."""
    dfs = DataflowStructure("mismatch")
    dfs.add_register("src", marked=True)
    dfs.add_control("ct", marked=True, value=True)
    dfs.add_control("cf", marked=True, value=False)
    dfs.add_push("p")
    dfs.add_register("dst")
    dfs.connect("src", "p")
    dfs.connect("ct", "p")
    dfs.connect("cf", "p")
    dfs.connect("p", "dst")
    return dfs


class TestStandardProperties:
    def test_conditional_example_passes_all_checks(self, conditional_dfs):
        summary = Verifier(conditional_dfs).verify_all()
        assert summary.passed
        assert summary.state_count > 0
        assert "deadlock freedom" in [r.property_name for r in summary.results]

    def test_token_ring_passes(self, ring):
        assert Verifier(ring).verify_all().passed

    def test_deadlock_detected_with_counterexample(self):
        verifier = Verifier(deadlocking_model())
        result = verifier.verify_deadlock_freedom()
        assert result.holds is False
        assert result.witnesses
        assert "dfs_state" in result.witnesses[0]

    def test_safeness_always_holds_for_translations(self, conditional_dfs):
        assert Verifier(conditional_dfs).verify_safeness().holds is True

    def test_value_exclusion(self, conditional_dfs):
        assert Verifier(conditional_dfs).verify_value_mutual_exclusion().holds is True


class TestControlMismatch:
    def test_mismatch_expression_none_when_single_control(self, conditional_dfs):
        assert control_mismatch_expression(conditional_dfs) is None

    def test_mismatch_detected(self):
        verifier = Verifier(mismatch_model())
        result = verifier.verify_control_mismatch()
        assert result.holds is False
        assert result.witnesses

    def test_mismatch_expression_for_specific_node(self):
        expression = control_mismatch_expression(mismatch_model(), "p")
        assert expression is not None
        assert {"Mt_ct_1", "Mf_ct_1", "Mt_cf_1", "Mf_cf_1"} >= expression.places()

    def test_mismatched_node_is_disabled(self):
        """The guarded push can never accept a token -- the pipe deadlocks."""
        verifier = Verifier(mismatch_model())
        assert verifier.verify_deadlock_freedom().holds is False


class TestCustomProperties:
    def test_custom_reach_property_pass(self, conditional_dfs):
        verifier = Verifier(conditional_dfs)
        # "comp register marked while the control register holds False" must
        # never happen -- that is the whole point of the bypass.
        result = verifier.verify_custom('$"M_r1_1" & $"Mf_ctrl_1"',
                                        property_name="bypass isolation")
        assert result.holds is True

    def test_custom_reach_property_fail(self, conditional_dfs):
        verifier = Verifier(conditional_dfs)
        result = verifier.verify_custom('$"M_in_1"', property_name="input never marked")
        assert result.holds is False
        assert result.witnesses[0]["trace"]

    def test_consistency_pairs_and_expression(self, conditional_dfs):
        pairs = variable_consistency_pairs(conditional_dfs)
        assert ("M_ctrl_0", "M_ctrl_1") in pairs
        verifier = Verifier(conditional_dfs)
        result = verifier.verify_custom(
            consistency_violation_expression(conditional_dfs),
            property_name="variable consistency")
        assert result.holds is True


class TestSummary:
    def test_report_is_readable(self, conditional_dfs):
        summary = Verifier(conditional_dfs).verify_all(include_persistence=False)
        text = summary.report()
        assert "deadlock freedom" in text
        assert "OK" in text

    def test_summary_collects_violations(self):
        summary = Verifier(deadlocking_model()).verify_all(include_persistence=False)
        assert not summary.passed
        assert summary.violations
        assert summary.result("deadlock freedom").violated

    def test_larger_comp_pipeline_still_verifies(self):
        verifier = Verifier(conditional_comp_dfs(comp_stages=3))
        assert verifier.verify_deadlock_freedom().holds is True

    def test_truncated_exploration_is_inconclusive(self):
        verifier = Verifier(token_ring(registers=6, tokens=2), max_states=5)
        result = verifier.verify_deadlock_freedom()
        assert result.holds is None


class TestWitnessShape:
    def test_safeness_witnesses_are_decorated(self, conditional_dfs):
        """All five checks attach dfs_state; safeness must not be the odd one.

        Translations are 1-safe by construction, so a violation is forced by
        doubling a token of the translated net behind the verifier's back.
        """
        verifier = Verifier(conditional_dfs)
        net = verifier.net
        for place in net.places.values():
            place.capacity = None
        net.place("M_in_1").tokens = 2
        result = verifier.verify_safeness()
        assert result.holds is False
        assert result.witnesses
        assert "dfs_state" in result.witnesses[0]
        assert "places" in result.witnesses[0]

    def test_engines_agree_on_summary(self, conditional_dfs):
        compiled = Verifier(conditional_dfs, engine="compiled").verify_all()
        explicit = Verifier(conditional_dfs, engine="explicit").verify_all()
        assert compiled.state_count == explicit.state_count
        for a, b in zip(compiled.results, explicit.results):
            assert a.property_name == b.property_name
            assert a.holds == b.holds
