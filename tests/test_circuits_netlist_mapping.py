"""Tests for the component library, netlist, mapping and Verilog export."""

import pytest

from repro.exceptions import CircuitError
from repro.circuits.handshake import Channel, ChannelPhase, FourPhaseProtocol
from repro.circuits.library import default_library
from repro.circuits.mapping import MappingOptions, SyncStyle, map_dfs_to_netlist, mapping_summary, sanitize
from repro.circuits.netlist import Module, Netlist, PortDirection
from repro.circuits.verilog import to_verilog
from repro.dfs.examples import linear_pipeline


class TestLibrary:
    def test_default_library_has_paper_components(self):
        library = default_library()
        for name in ("dr_register", "ctrl_register", "push_register", "pop_register",
                     "dr_comparator", "dr_adder", "c_element", "lfsr16", "accumulator32"):
            assert library.has_component(name)

    def test_duplicate_component_rejected(self):
        library = default_library()
        with pytest.raises(CircuitError):
            library.add_component(library.component("dr_register"))

    def test_component_lookup_by_kind(self):
        library = default_library()
        kinds = {c.kind for c in library.components_of_kind("logic")}
        assert kinds == {"logic"}

    def test_unknown_component_raises(self):
        with pytest.raises(CircuitError):
            default_library().component("flux_capacitor")


class TestNetlist:
    def test_module_ports_and_nets(self):
        module = Module("m")
        module.add_input("a", width=2)
        module.add_output("z")
        module.add_net("w")
        assert module.ports["a"].direction is PortDirection.INPUT
        assert module.has_net("w") and module.has_net("a")

    def test_instance_connection_validation(self):
        module = Module("m")
        module.add_net("n")
        module.add_instance("u1", "cell", connections={"a": "n"})
        module.validate()
        module.add_instance("u2", "cell", connections={"a": "missing"})
        with pytest.raises(CircuitError):
            module.validate()

    def test_netlist_component_counts_recursive(self):
        netlist = Netlist("top", library=default_library())
        leaf = netlist.new_module("leaf")
        leaf.add_net("n")
        leaf.add_instance("u1", "c_element", connections={})
        top = netlist.new_module("top_mod", top=True)
        top.add_net("n")
        top.add_instance("x0", "leaf", connections={})
        top.add_instance("x1", "leaf", connections={})
        counts = netlist.component_counts()
        assert counts == {"c_element": 2}
        assert netlist.total_area() == pytest.approx(2 * 7.5)


class TestHandshake:
    def test_cycle_time_is_sum_of_phases(self):
        protocol = FourPhaseProtocol(1.0, 0.5)
        assert protocol.cycle_time == pytest.approx(3.0)

    def test_channel_transfer_counts(self):
        channel = Channel("ch", "a", "b", FourPhaseProtocol(1.0, 0.5))
        total = channel.complete_transfer(payload=42)
        assert total == pytest.approx(3.0)
        assert channel.transfers == 1
        assert channel.phase is ChannelPhase.IDLE

    def test_transfer_from_busy_channel_rejected(self):
        channel = Channel("ch", "a", "b", FourPhaseProtocol(1.0, 0.5))
        channel.advance()
        with pytest.raises(CircuitError):
            channel.complete_transfer()


class TestMapping:
    def test_sanitize(self):
        assert sanitize("s3.local_in") == "s3_local_in"
        assert sanitize("stage[4]") == "stage_4_"

    def test_every_dfs_node_becomes_an_instance(self, conditional_dfs):
        netlist = map_dfs_to_netlist(conditional_dfs)
        top = netlist.top_module()
        dfs_instances = [i for i in top.instances.values() if "dfs_node" in i.attributes]
        assert len(dfs_instances) == len(conditional_dfs.nodes)

    def test_node_types_map_to_expected_components(self, conditional_dfs):
        netlist = map_dfs_to_netlist(conditional_dfs)
        references = {i.attributes.get("dfs_node"): i.reference
                      for i in netlist.top_module().instances.values()
                      if "dfs_node" in i.attributes}
        assert references["ctrl"] == "ctrl_register"
        assert references["filt"] == "push_register"
        assert references["out"] == "pop_register"
        assert references["in"] == "dr_register"

    def test_function_map_selects_logic_component(self, conditional_dfs):
        netlist = map_dfs_to_netlist(conditional_dfs)
        references = {i.attributes.get("dfs_node"): i.reference
                      for i in netlist.top_module().instances.values()}
        assert references["cond"] == "dr_comparator"

    def test_sync_style_changes_c_element_count(self):
        # A node with large fan-out needs an ack-merge structure; chain and
        # tree use the same number of 2-input C-elements but different depth,
        # so compare against a model with fan-out > 2.
        dfs = linear_pipeline(stages=1)
        for index in range(4):
            dfs.add_register("sink{}".format(index))
            dfs.connect("f1", "sink{}".format(index))
        chain = map_dfs_to_netlist(dfs, options=MappingOptions(sync_style=SyncStyle.DAISY_CHAIN))
        tree = map_dfs_to_netlist(dfs, options=MappingOptions(sync_style=SyncStyle.TREE))
        assert mapping_summary(chain)["sync_elements"] == mapping_summary(tree)["sync_elements"]
        assert mapping_summary(chain)["sync_elements"] >= 4

    def test_mapping_summary_fields(self, conditional_dfs):
        summary = mapping_summary(map_dfs_to_netlist(conditional_dfs))
        assert summary["instances"] > 0
        assert summary["area_um2"] > 0
        assert summary["leakage_nw"] > 0


class TestVerilog:
    def test_verilog_contains_top_module_and_instances(self, conditional_dfs):
        netlist = map_dfs_to_netlist(conditional_dfs)
        text = to_verilog(netlist)
        assert "module {} (".format(netlist.top) in text
        assert "ctrl_register" in text
        assert text.count("endmodule") >= 2  # top + black boxes

    def test_verilog_blackboxes_optional(self, conditional_dfs):
        netlist = map_dfs_to_netlist(conditional_dfs)
        with_stubs = to_verilog(netlist, include_blackboxes=True)
        without = to_verilog(netlist, include_blackboxes=False)
        assert len(with_stubs) > len(without)
        assert "black-box stub" not in without
