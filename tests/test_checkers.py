"""Tests for the pluggable checker architecture.

The differential suite is the safety net of the whole refactor: every
checker may answer ``None`` (inconclusive) wherever it likes, but a
*conclusive* verdict that contradicts the exhaustive engine on a fully
explored state space is a soundness bug, never a tuning issue.
"""

import pytest

from repro.campaign.jobs import VerificationJob, build_pipeline_model
from repro.campaign.cache import options_digest
from repro.dfs.examples import conditional_comp_dfs, linear_pipeline, token_ring
from repro.dfs.model import DataflowStructure
from repro.dfs.semantics import marking_event_names, place_name
from repro.dfs.translation import place_name as translation_place_name
from repro.dfs.translation import to_petri_net
from repro.exceptions import ConfigurationError, VerificationError
from repro.petri.batch import numpy_available
from repro.petri.invariants import compute_semiflows, place_bounds
from repro.petri.reachability import build_reachability_graph
from repro.reach.cubes import Cube, to_cubes
from repro.reach.evaluator import marking_predicate
from repro.reach.parser import parse
from repro.verification.checkers import (
    CHECKERS,
    CheckerContext,
    DeadlockQuery,
    PortfolioChecker,
    ReachQuery,
    SafenessQuery,
    create_checker,
)
from repro.verification.verifier import (
    CUSTOM_PROPERTIES,
    Verifier,
    register_custom_property,
    unregister_custom_property,
)

DIFFERENTIAL_PROPERTIES = ("safeness", "deadlock", "mismatch", "exclusion")
ALL_CHECKERS = ("exhaustive", "inductive", "walk", "portfolio")


def deadlocking_model():
    """Two registers in mutual wait: an empty ring of length 2 via logic."""
    dfs = DataflowStructure("deadlock")
    dfs.add_register("a")
    dfs.add_register("b")
    dfs.add_logic("f")
    dfs.add_logic("g")
    dfs.connect_chain("a", "f", "b")
    dfs.connect_chain("b", "g", "a")
    return dfs


def mismatch_model():
    """A push guarded by two control registers initialised with opposite values."""
    dfs = DataflowStructure("mismatch")
    dfs.add_register("src", marked=True)
    dfs.add_control("ct", marked=True, value=True)
    dfs.add_control("cf", marked=True, value=False)
    dfs.add_push("p")
    dfs.add_register("dst")
    dfs.connect("src", "p")
    dfs.connect("ct", "p")
    dfs.connect("cf", "p")
    dfs.connect("p", "dst")
    return dfs


#: The example-DFS family: name -> factory.  Clean and buggy (hole /
#: deadlock / mismatch) models both, so agreement is tested in both verdict
#: directions.
MODEL_FAMILY = {
    "conditional": lambda: conditional_comp_dfs(comp_stages=1),
    "conditional3": lambda: conditional_comp_dfs(comp_stages=3),
    "linear": lambda: linear_pipeline(stages=3),
    "ring": lambda: token_ring(registers=4, tokens=1),
    "pipeline2": lambda: build_pipeline_model(2, static_prefix=1),
    "pipeline3-hole": lambda: build_pipeline_model(3, static_prefix=1, holes=[2]),
    "deadlock": deadlocking_model,
    "mismatch": mismatch_model,
}


class TestDifferentialAgreement:
    """Conclusive verdicts must never contradict the exhaustive engine."""

    @pytest.fixture(scope="class")
    def exhaustive_verdicts(self):
        verdicts = {}
        for model_name, factory in MODEL_FAMILY.items():
            summary = Verifier(factory(), checker="exhaustive").verify_properties(
                DIFFERENTIAL_PROPERTIES)
            verdicts[model_name] = {
                result.property_name: result.holds for result in summary.results}
        return verdicts

    @pytest.mark.parametrize("checker", ALL_CHECKERS)
    @pytest.mark.parametrize("model_name", sorted(MODEL_FAMILY))
    def test_conclusive_verdicts_agree(self, checker, model_name,
                                       exhaustive_verdicts):
        summary = Verifier(MODEL_FAMILY[model_name](),
                           checker=checker).verify_properties(
            DIFFERENTIAL_PROPERTIES)
        reference = exhaustive_verdicts[model_name]
        for result in summary.results:
            expected = reference[result.property_name]
            assert expected is not None, (
                "the exhaustive reference must be conclusive on the "
                "(small) example family")
            if result.holds is None:
                continue  # inconclusive is always acceptable
            assert result.holds is expected, (
                "{} checker contradicts exhaustive on {}/{}: {} vs {} "
                "({})".format(checker, model_name, result.property_name,
                              result.holds, expected, result.details))

    @pytest.mark.parametrize("backend", ("scalar", "batch"))
    @pytest.mark.parametrize("model_name", sorted(MODEL_FAMILY))
    def test_walk_backends_agree_with_exhaustive(self, backend, model_name,
                                                 exhaustive_verdicts):
        """Both walk backends, differentially against the exhaustive engine.

        The swarm is a throughput change only: a conclusive swarm verdict
        contradicting the scalar/exhaustive truth is a soundness bug.
        """
        if backend == "batch" and not numpy_available():
            pytest.skip("batch walk backend needs NumPy")
        summary = Verifier(
            MODEL_FAMILY[model_name](), checker="walk",
            checker_options={"walk": {"backend": backend}},
        ).verify_properties(DIFFERENTIAL_PROPERTIES)
        reference = exhaustive_verdicts[model_name]
        for result in summary.results:
            if result.holds is None:
                continue
            assert result.holds is reference[result.property_name], (
                "walk[{}] contradicts exhaustive on {}/{}: {}".format(
                    backend, model_name, result.property_name,
                    result.details))

    def test_scalar_walk_same_seed_same_witness(self):
        """The seeding contract: same seed, same verdict, same trace."""
        dfs = build_pipeline_model(3, static_prefix=1, holes=[2])
        outcomes = []
        for _ in range(2):
            verifier = Verifier(dfs, checker="walk", checker_options={
                "walk": {"backend": "scalar", "seed": 2026}})
            outcomes.append(verifier.verify_deadlock_freedom())
        assert outcomes[0].holds is outcomes[1].holds is False
        assert (outcomes[0].witnesses[0]["trace"]
                == outcomes[1].witnesses[0]["trace"])

    @pytest.mark.parametrize("checker", ALL_CHECKERS)
    def test_violation_witnesses_carry_replayable_traces(self, checker):
        """Any conclusive 'violated' must come with a firable trace."""
        dfs = build_pipeline_model(3, static_prefix=1, holes=[2])
        result = Verifier(dfs, checker=checker).verify_deadlock_freedom()
        if result.holds is None:
            pytest.skip("{} checker was inconclusive here".format(checker))
        assert result.holds is False
        net = to_petri_net(dfs)
        marking = net.initial_marking()
        for transition in result.witnesses[0]["trace"]:
            marking = net.fire(transition, marking)
        assert marking == result.witnesses[0]["marking"]
        assert not net.enabled_transitions(marking)
        assert "dfs_state" in result.witnesses[0]


class TestBeyondTheTruncationHorizon:
    """The acceptance scenario: conclusive verdicts past ``max_states``."""

    def test_inductive_concludes_where_exhaustive_truncates(self):
        dfs = build_pipeline_model(4, static_prefix=1)

        exhaustive = Verifier(dfs, max_states=2000, checker="exhaustive")
        summary = exhaustive.verify_properties(("safeness", "exclusion"))
        assert summary.truncated
        assert [r.holds for r in summary.results] == [None, None]

        inductive = Verifier(dfs, max_states=2000, checker="inductive")
        summary = inductive.verify_properties(("safeness", "exclusion"))
        assert [r.holds for r in summary.results] == [True, True]
        assert all(r.method == "inductive" for r in summary.results)
        # No state space was ever built for the proof.
        assert summary.state_count == 0 and not summary.truncated

    def test_walk_finds_hole_deadlock_where_exhaustive_truncates(self):
        dfs = build_pipeline_model(4, static_prefix=1, holes=[2])

        exhaustive = Verifier(dfs, max_states=200, checker="exhaustive")
        assert exhaustive.verify_deadlock_freedom().holds is None

        walk = Verifier(dfs, max_states=200, checker="walk")
        result = walk.verify_deadlock_freedom()
        assert result.holds is False
        assert result.method == "walk"
        assert result.witnesses[0]["trace"]

    def test_portfolio_is_conclusive_both_ways_beyond_the_horizon(self):
        clean = Verifier(build_pipeline_model(4, static_prefix=1),
                         max_states=2000, checker="portfolio")
        result = clean.verify_value_mutual_exclusion()
        assert result.holds is True
        assert result.method == "inductive"

        holey = Verifier(build_pipeline_model(4, static_prefix=1, holes=[2]),
                         max_states=200, checker="portfolio")
        result = holey.verify_deadlock_freedom()
        assert result.holds is False
        assert result.method == "walk"


class TestCheckerSelection:
    def test_unknown_checker_is_rejected(self, conditional_dfs):
        with pytest.raises(VerificationError):
            Verifier(conditional_dfs, checker="quantum")

    def test_per_property_override_and_per_call_checker(self, conditional_dfs):
        verifier = Verifier(conditional_dfs, checker="exhaustive",
                            checker_overrides={"exclusion": "inductive"})
        assert verifier.verify_value_mutual_exclusion().method == "inductive"
        assert verifier.verify_deadlock_freedom().method == "exhaustive"
        # An explicit per-call argument wins over both.
        assert verifier.verify_value_mutual_exclusion(
            checker="exhaustive").method == "exhaustive"

    def test_walk_never_claims_holds(self, conditional_dfs):
        summary = Verifier(conditional_dfs, checker="walk").verify_properties(
            DIFFERENTIAL_PROPERTIES)
        assert all(result.holds is not True for result in summary.results
                   if result.method == "walk")

    def test_persistence_reaches_exhaustive_through_the_portfolio(
            self, conditional_dfs):
        result = Verifier(conditional_dfs,
                          checker="portfolio").verify_persistence()
        assert result.holds is True
        assert result.method == "exhaustive"

    def test_portfolio_rejects_bad_configurations(self, conditional_dfs):
        context = CheckerContext(to_petri_net(conditional_dfs))
        with pytest.raises(ConfigurationError):
            PortfolioChecker(context, order=("portfolio", "exhaustive"))
        with pytest.raises(ConfigurationError):
            PortfolioChecker(context, order=("exhaustive", "no-such"))
        with pytest.raises(ConfigurationError):
            PortfolioChecker(context, order=("exhaustive",),
                             walk={"walks": 2})

    def test_checker_options_reach_the_members(self, conditional_dfs):
        verifier = Verifier(conditional_dfs, checker="walk",
                            checker_options={"walk": {"walks": 1, "steps": 1}})
        result = verifier.verify_deadlock_freedom()
        assert result.holds is None
        assert "1 walk(s) of 1 step(s)" in result.details

    def test_unknown_checker_options_keys_are_rejected(self, conditional_dfs):
        with pytest.raises(VerificationError):
            Verifier(conditional_dfs, checker_options={"wakl": {"walks": 2}})
        with pytest.raises(VerificationError):
            Verifier(conditional_dfs, checker_overrides={"deadlock": "wakl"})

    def test_top_level_member_options_reach_the_portfolio(self, conditional_dfs):
        # The README documents checker_options={"walk": {...}} as tuning the
        # walks; that must hold when the walk runs as a portfolio member.
        verifier = Verifier(conditional_dfs, checker="portfolio",
                            checker_options={"walk": {"walks": 3, "seed": 5}})
        portfolio = verifier._checker_for("deadlock")
        walk = next(m for m in portfolio.members if m.name == "walk")
        assert walk.walks == 3
        assert walk.seed == 5

    def test_registry_exposes_all_engines(self):
        assert set(ALL_CHECKERS) <= set(CHECKERS)
        context = CheckerContext(to_petri_net(conditional_comp_dfs()))
        checker = create_checker("inductive", context, {"max_cubes": 7})
        assert checker.max_cubes == 7
        with pytest.raises(VerificationError):
            create_checker("no-such", context)


class TestInductiveInternals:
    def test_semiflows_hold_on_every_reachable_marking(self, conditional_dfs):
        net = to_petri_net(conditional_dfs)
        semiflows = compute_semiflows(net)
        assert semiflows
        graph = build_reachability_graph(net)
        for marking in graph.states:
            assert all(flow.holds_at(marking) for flow in semiflows)
        # Complementary pairs bound every place of the translation by one.
        bounds = place_bounds(semiflows)
        assert all(bounds.get(place) == 1 for place in net.places)

    def test_inductive_falsification_replays_into_a_real_bad_state(
            self, conditional_dfs):
        verifier = Verifier(conditional_dfs, checker="inductive")
        result = verifier.verify_custom('$"M_in_1"',
                                        property_name="input never marked")
        assert result.holds is False
        witness = result.witnesses[0]
        net = to_petri_net(conditional_dfs)
        marking = net.initial_marking()
        for transition in witness["trace"]:
            marking = net.fire(transition, marking)
        assert marking[place_name("M", "in", 1)] == 1

    def test_inductive_proof_of_a_custom_safety_property(self, conditional_dfs):
        # The bypass isolation property holds; the backward induction must
        # close rather than stay inconclusive on this small model.
        verifier = Verifier(conditional_dfs, checker="inductive")
        result = verifier.verify_custom('$"M_r1_1" & $"Mf_ctrl_1"',
                                        property_name="bypass isolation")
        assert result.holds is True
        assert "closed" in result.details

    def test_budget_exhaustion_is_inconclusive_not_wrong(self, conditional_dfs):
        verifier = Verifier(conditional_dfs, checker="inductive",
                            checker_options={"inductive": {"max_cubes": 1}})
        result = verifier.verify_custom('$"M_r1_1" & $"Mf_ctrl_1"')
        assert result.holds is None
        assert "budget" in result.details


class TestNonOneSafeNets:
    """Cube reasoning must refuse nets the invariants cannot certify 1-safe."""

    @staticmethod
    def _overflowing_net():
        from repro.petri.net import PetriNet

        net = PetriNet("not_one_safe")
        net.add_place("p", tokens=1)
        net.add_place("q", tokens=1)
        net.add_transition("t")
        net.add_arc("q", "t")
        net.add_arc("t", "p")
        return net

    def test_inductive_never_contradicts_exhaustive_on_multi_token_nets(self):
        context = CheckerContext(self._overflowing_net())
        query = ReachQuery("tokens(p) >= 2")
        exhaustive = create_checker("exhaustive", context).check(query)
        assert exhaustive.holds is False  # firing t puts two tokens into p
        inductive = create_checker("inductive", context).check(query)
        assert inductive.holds is None
        assert "1-safety" in inductive.details
        portfolio = create_checker("portfolio", context).check(query)
        assert portfolio.holds is False  # the exhaustive member decides

    def test_walk_overflow_is_not_a_deadlock_or_reach_verdict(self):
        context = CheckerContext(self._overflowing_net())
        walk = create_checker("walk", context)
        assert walk.check(DeadlockQuery()).holds is None
        assert walk.check(ReachQuery('$"q"')).holds is False  # init is bad
        outcome = walk.check(SafenessQuery(bound=1))
        assert outcome.holds is False
        assert outcome.witnesses[0]["place"] == "p"
        assert "overflows" in outcome.details


class TestReachCubes:
    def test_dnf_of_nested_expression(self):
        cubes = to_cubes(parse('($"a_1" | $"b_1") & !$"c_1"'))
        assert set(cubes) == {
            Cube(true_places=("a_1",), false_places=("c_1",)),
            Cube(true_places=("b_1",), false_places=("c_1",)),
        }

    def test_compare_resolves_under_one_safety(self):
        assert to_cubes(parse('tokens(p) >= 1')) == [Cube(true_places=("p",))]
        assert to_cubes(parse('tokens(p) < 1')) == [Cube(false_places=("p",))]
        assert to_cubes(parse('tokens(p) > 1')) == []  # unsatisfiable
        assert to_cubes(parse('tokens(p) >= 0')) == [Cube()]  # trivially true

    def test_contradictions_are_dropped(self):
        assert to_cubes(parse('$"p" & !$"p"')) == []

    def test_cube_budget_returns_none(self):
        terms = " & ".join('($"a{0}" | $"b{0}")'.format(i) for i in range(12))
        assert to_cubes(parse(terms), max_cubes=16) is None

    def test_marking_predicate_matches_graph_evaluation(self, conditional_dfs):
        net = to_petri_net(conditional_dfs)
        predicate = marking_predicate('$"M_in_1"', net=net)
        graph = build_reachability_graph(net)
        for marking in graph.states:
            assert predicate(marking) == (marking["M_in_1"] > 0)


class TestCustomPropertyRegistry:
    def test_registered_name_runs_through_verify_properties(self, conditional_dfs):
        register_custom_property("input_never_marked", '$"M_in_1"')
        try:
            summary = Verifier(conditional_dfs).verify_properties(
                ("deadlock", "input_never_marked"))
            result = summary.result("input_never_marked")
            assert result.holds is False
            assert result.witnesses[0]["trace"]
        finally:
            unregister_custom_property("input_never_marked")
        assert "input_never_marked" not in CUSTOM_PROPERTIES

    def test_builtin_names_cannot_be_shadowed(self):
        with pytest.raises(VerificationError):
            register_custom_property("deadlock", "true")

    def test_unknown_property_error_lists_customs(self, conditional_dfs):
        register_custom_property("listed_custom", "false")
        try:
            with pytest.raises(VerificationError) as excinfo:
                Verifier(conditional_dfs).verify_properties(("nope",))
            assert "listed_custom" in str(excinfo.value)
        finally:
            unregister_custom_property("listed_custom")

    def test_campaign_job_carries_inline_custom_properties(self):
        job = VerificationJob(
            "custom-job", "conditional", kwargs={"comp_stages": 1},
            properties=("deadlock", "bad_input"),
            custom_properties={"bad_input": '$"M_in_1"'})
        payload = job.run()
        records = {record["property"]: record
                   for record in payload["verdict"]["properties"]}
        assert records["bad_input"]["holds"] is False
        assert records["bad_input"]["trace"]
        assert payload["verdict"]["passed"] is False


class TestCampaignSeedThreading:
    """The lfsr_seeds axis must reach the walk checker, not just the smoke."""

    def test_seed_threads_into_the_walk_checker(self):
        job = VerificationJob("j", "conditional", checker="walk", lfsr_seed=7)
        assert job.effective_checker_options() == {"walk": {"seed": 7}}

    def test_seed_threads_into_a_portfolio_walk_member(self, conditional_dfs):
        job = VerificationJob("j", "conditional", checker="portfolio",
                              lfsr_seed=7,
                              checker_options={"portfolio": {"walk": {"walks": 4}}})
        options = job.effective_checker_options()
        assert options["walk"] == {"seed": 7}
        # The job's stored (digest-relevant) options are left untouched.
        assert job.checker_options == {"portfolio": {"walk": {"walks": 4}}}
        # End to end: the instantiated portfolio's walk member sees both the
        # axis seed (top-level) and the explicit nested member options.
        verifier = Verifier(conditional_dfs, checker="portfolio",
                            checker_options=options)
        portfolio = verifier._checker_for("deadlock")
        walk = next(m for m in portfolio.members if m.name == "walk")
        assert walk.seed == 7
        assert walk.walks == 4

    def test_explicit_seed_wins_over_the_axis(self):
        job = VerificationJob("j", "conditional", checker="walk", lfsr_seed=7,
                              checker_options={"walk": {"seed": 99}})
        assert job.effective_checker_options() == {"walk": {"seed": 99}}

    def test_exhaustive_jobs_are_unaffected(self):
        job = VerificationJob("j", "conditional", lfsr_seed=7)
        assert job.effective_checker_options() == {}


class TestCampaignCacheKeys:
    def test_checker_choice_distinguishes_cache_keys(self):
        base = dict(kwargs={"comp_stages": 1}, properties=("deadlock",))
        exhaustive = VerificationJob("a", "conditional", checker="exhaustive",
                                     **base)
        portfolio = VerificationJob("b", "conditional", checker="portfolio",
                                    **base)
        assert options_digest(exhaustive.options()) != \
            options_digest(portfolio.options())

    def test_registry_expressions_are_part_of_the_cache_digest(self):
        def job():
            # Jobs snapshot registry expressions at construction time, which
            # makes them self-contained across process boundaries (spawn
            # workers re-import with an empty registry) and puts the actual
            # expression into the cache digest.
            return VerificationJob("j", "conditional", kwargs={"comp_stages": 1},
                                   properties=("deadlock", "reg_prop"))

        register_custom_property("reg_prop", '$"M_in_1"')
        try:
            first_job = job()
            first = options_digest(first_job.options())
            assert first_job.custom_properties == {"reg_prop": '$"M_in_1"'}
        finally:
            unregister_custom_property("reg_prop")
        register_custom_property("reg_prop", '$"M_dst_1"')
        try:
            second = options_digest(job().options())
        finally:
            unregister_custom_property("reg_prop")
        # Re-registering a name with a different expression can never be
        # answered from the stale cached verdict of the old expression.
        assert first != second
        # The snapshot keeps working after the registry entry is gone.
        payload = first_job.run()
        assert payload["verdict"]["properties"][1]["holds"] is False

    def test_checker_options_distinguish_cache_keys(self):
        base = dict(kwargs={"comp_stages": 1}, properties=("deadlock",),
                    checker="walk")
        short = VerificationJob("a", "conditional",
                                checker_options={"walk": {"walks": 2}}, **base)
        long = VerificationJob("b", "conditional",
                               checker_options={"walk": {"walks": 64}}, **base)
        assert options_digest(short.options()) != options_digest(long.options())

    def test_warm_cache_round_trips_checker_verdicts(self, tmp_path):
        def job():
            return VerificationJob(
                "hole", "pipeline",
                kwargs={"stages": 3, "static_prefix": 1, "holes": [2]},
                properties=("deadlock",), checker="portfolio", expect="deadlock")

        cache_dir = str(tmp_path / "cache")
        cold = job().run(cache=cache_dir)
        warm = job().run(cache=cache_dir)
        assert cold["cache"] == "miss" and warm["cache"] == "hit"
        assert warm["verdict"] == cold["verdict"]
        record = warm["verdict"]["properties"][0]
        assert record["holds"] is False
        assert record["method"] == "walk"
        assert warm["verdict"]["checker"] == "portfolio"


class TestNamingHelpers:
    def test_place_name_single_source_of_truth(self):
        # The translation re-exports the semantics helper, not a copy.
        assert translation_place_name is place_name
        assert place_name("Mt", "ctrl", 1) == "Mt_ctrl_1"

    def test_place_name_rejects_unknown_kinds_and_bits(self):
        from repro.exceptions import TranslationError

        with pytest.raises(TranslationError):
            place_name("M", "x", 2)
        with pytest.raises(TranslationError):
            place_name("Q", "x", 1)

    def test_marking_event_names_cover_all_marking_actions(self):
        assert marking_event_names("out") == {"M_out+", "Mt_out+", "Mf_out+"}

    def test_simulator_counts_tokens_through_the_helper(self, conditional_dfs):
        from repro.dfs.simulation import DfsSimulator

        simulator = DfsSimulator(conditional_dfs)
        simulator.run_random(200, seed=7)
        counted = simulator.tokens_produced("out")
        expected = sum(1 for name in simulator.trace
                       if name in marking_event_names("out"))
        assert counted == expected
