"""Tests for the silicon package: voltage model, energy, waveforms, chip model."""

import pytest

from repro.exceptions import ConfigurationError, MeasurementError
from repro.silicon.chip import PipelineSiliconModel, SyncStructure
from repro.silicon.energy import EnergyAccount, EnergyBreakdown
from repro.silicon.environment import (
    SupplyWaveform,
    constant_supply,
    dip_and_recover,
    ramp_supply,
    step_supply,
)
from repro.silicon.measurement import MeasurementHarness
from repro.silicon.voltage import VoltageModel


class TestVoltageModel:
    def test_nominal_scales_are_unity(self):
        model = VoltageModel()
        assert model.delay_scale(1.2) == pytest.approx(1.0)
        assert model.energy_scale(1.2) == pytest.approx(1.0)
        assert model.leakage_scale(1.2) == pytest.approx(1.0)

    def test_lower_voltage_is_slower_but_cheaper(self):
        model = VoltageModel()
        assert model.delay_scale(0.6) > 1.0
        assert model.energy_scale(0.6) < 1.0
        assert model.delay_scale(1.6) < 1.0
        assert model.energy_scale(1.6) > 1.0

    def test_delay_monotonically_decreases_with_voltage(self):
        model = VoltageModel()
        voltages = [0.5, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6]
        scales = [model.delay_scale(v) for v in voltages]
        assert scales == sorted(scales, reverse=True)

    def test_freeze_below_threshold(self):
        model = VoltageModel()
        assert not model.is_operational(0.34)
        assert not model.is_operational(0.3)
        assert model.is_operational(0.35)
        assert model.delay_scale(0.3) == float("inf")
        assert model.speed_scale(0.3) == 0.0

    def test_out_of_range_voltage_rejected(self):
        with pytest.raises(MeasurementError):
            VoltageModel().delay_scale(5.0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(MeasurementError):
            VoltageModel(nominal_voltage=1.0, threshold_voltage=1.2)
        with pytest.raises(MeasurementError):
            VoltageModel(threshold_voltage=0.4, freeze_voltage=0.3)

    def test_sweep_rows(self):
        rows = VoltageModel().sweep([0.3, 1.2])
        assert rows[0]["operational"] is False
        assert rows[1]["delay_scale"] == pytest.approx(1.0)


class TestEnergy:
    def test_breakdown_addition_and_scaling(self):
        total = EnergyBreakdown(1.0, 2.0) + EnergyBreakdown(0.5, 0.5)
        assert total.total == pytest.approx(4.0)
        assert total.scaled(2.0).switching == pytest.approx(3.0)

    def test_account_accumulates_by_label(self):
        account = EnergyAccount()
        account.add_switching(1e-3, label="datapath")
        account.add_leakage_power(1e-6, 10.0, label="leakage")
        assert account.total == pytest.approx(1e-3 + 1e-5)
        assert account.by_label()["leakage"] == pytest.approx(1e-5)
        assert account.breakdown().leakage == pytest.approx(1e-5)


class TestWaveforms:
    def test_constant_supply(self):
        waveform = constant_supply(0.9)
        assert waveform.voltage_at(0) == pytest.approx(0.9)
        assert waveform.voltage_at(100) == pytest.approx(0.9)

    def test_ramp_interpolation(self):
        waveform = ramp_supply(1.0, 0.5, duration=10.0)
        assert waveform.voltage_at(5.0) == pytest.approx(0.75)
        assert waveform.voltage_at(20.0) == pytest.approx(0.5)

    def test_step_supply(self):
        waveform = step_supply([(0.0, 1.2), (5.0, 0.6)])
        assert waveform.voltage_at(4.999) == pytest.approx(1.2)
        assert waveform.voltage_at(5.001) == pytest.approx(0.6)

    def test_unordered_points_rejected(self):
        with pytest.raises(MeasurementError):
            SupplyWaveform([(5.0, 1.0), (1.0, 0.5)])

    def test_dip_and_recover_reaches_low_voltage(self):
        waveform = dip_and_recover(high_voltage=0.5, low_voltage=0.34)
        voltages = [v for _, v in waveform.sample(0.5)]
        assert min(voltages) == pytest.approx(0.34)
        assert voltages[0] == pytest.approx(0.5)
        assert voltages[-1] == pytest.approx(0.5)

    def test_sample_step_validation(self):
        with pytest.raises(MeasurementError):
            constant_supply(1.0, duration=1.0).sample(0)


class TestPipelineSiliconModel:
    def test_reference_point_calibration(self):
        static = PipelineSiliconModel.static_ope(18)
        time_s = static.computation_time_s(16_000_000, 1.2)
        energy_j = static.consumed_energy_j(16_000_000, 1.2)
        assert time_s == pytest.approx(1.22, rel=0.02)
        assert energy_j == pytest.approx(2.74e-3, rel=0.02)

    def test_reconfigurable_overheads_match_paper(self):
        static = PipelineSiliconModel.static_ope(18)
        reconfigurable = PipelineSiliconModel.reconfigurable_ope(18)
        time_overhead = (reconfigurable.cycle_time_ns() / static.cycle_time_ns()) - 1.0
        energy_overhead = (reconfigurable.energy_per_item_pj() /
                           static.energy_per_item_pj()) - 1.0
        assert time_overhead == pytest.approx(0.36, abs=0.02)
        assert energy_overhead == pytest.approx(0.05, abs=0.01)

    def test_tree_sync_reduces_overhead_below_ten_percent(self):
        static = PipelineSiliconModel.static_ope(18)
        improved = PipelineSiliconModel.reconfigurable_ope(
            18, sync_structure=SyncStructure.TREE)
        overhead = (improved.cycle_time_ns() / static.cycle_time_ns()) - 1.0
        assert 0.0 < overhead < 0.10

    def test_linear_scaling_with_depth(self):
        model_a = PipelineSiliconModel.reconfigurable_ope(6)
        model_b = PipelineSiliconModel.reconfigurable_ope(12)
        model_c = PipelineSiliconModel.reconfigurable_ope(18)
        t = [m.cycle_time_ns() for m in (model_a, model_b, model_c)]
        e = [m.energy_per_item_pj() for m in (model_a, model_b, model_c)]
        # Equal depth increments produce equal increments (linearity).
        assert (t[1] - t[0]) == pytest.approx(t[2] - t[1], rel=1e-6)
        assert (e[1] - e[0]) == pytest.approx(e[2] - e[1], rel=1e-6)

    def test_frozen_voltage_gives_infinite_time(self):
        model = PipelineSiliconModel.static_ope(18)
        assert model.computation_time_s(1000, 0.3) == float("inf")
        assert model.item_rate(0.3) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineSiliconModel(0)
        with pytest.raises(ConfigurationError):
            PipelineSiliconModel(4, calibration={"bogus": 1.0})

    def test_sync_depths(self):
        assert SyncStructure.DAISY_CHAIN.depth(18) == 17
        assert SyncStructure.TREE.depth(18) == 5
        assert SyncStructure.TREE.depth(1) == 0


class TestMeasurementHarness:
    def test_run_returns_measurement(self):
        harness = MeasurementHarness(PipelineSiliconModel.static_ope(18))
        measurement = harness.run(1_000_000, 1.2)
        assert measurement.computation_time_s > 0
        assert measurement.consumed_energy_j > 0
        assert measurement.average_power_w > 0

    def test_run_at_frozen_voltage_rejected(self):
        harness = MeasurementHarness(PipelineSiliconModel.static_ope(18))
        with pytest.raises(MeasurementError):
            harness.run(1000, 0.3)

    def test_voltage_sweep_and_normalisation(self):
        harness = MeasurementHarness(PipelineSiliconModel.static_ope(18))
        sweep = harness.voltage_sweep(1_000_000, [0.6, 1.2])
        rows = MeasurementHarness.normalise_sweep(sweep, sweep[1.2])
        by_voltage = {row["voltage"]: row for row in rows}
        assert by_voltage[1.2]["normalised_time"] == pytest.approx(1.0)
        assert by_voltage[0.6]["normalised_time"] > 1.0
        assert by_voltage[0.6]["normalised_energy"] < 1.0

    def test_waveform_run_freezes_and_recovers(self):
        harness = MeasurementHarness(PipelineSiliconModel.reconfigurable_ope(18))
        waveform = dip_and_recover()
        measurement = harness.run_with_waveform(2_000_000, waveform, time_step=0.1)
        assert measurement.completed
        trace = measurement.trace
        assert trace is not None and trace.samples
        # While frozen the chip draws only leakage power (well under a microwatt).
        frozen_powers = [p for _, v, p, _ in trace.samples if v <= 0.34]
        active_powers = [p for _, v, p, _ in trace.samples if v >= 0.5]
        assert frozen_powers and max(frozen_powers) < min(max(active_powers), 1e-5)

    def test_waveform_run_can_time_out(self):
        harness = MeasurementHarness(PipelineSiliconModel.reconfigurable_ope(18))
        measurement = harness.run_with_waveform(
            10_000_000, constant_supply(0.35), time_step=0.5, max_time=2.0)
        assert not measurement.completed
