"""Tests for the array-native batch exploration engine (repro.petri.batch).

The differential tests are the contract of the engine: on every model of
the example family the batch explorer must produce a graph bit-identical to
``explore_compiled`` -- same states in the same discovery order, same
packed edges, same parents (hence traces), same frontier and truncation --
and the columnar fast paths must answer every property/Reach query with
the same verdicts and witnesses as the pure-int graph.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.petri.batch import numpy_available as _numpy_available

#: REPRO_NO_NUMPY disables the engine even with NumPy installed; these
#: tests then skip exactly like on a machine without the extra.
pytestmark = pytest.mark.skipif(
    not _numpy_available(), reason="batch engine disabled (REPRO_NO_NUMPY)")

from repro.campaign.jobs import build_pipeline_model
from repro.dfs.examples import (
    conditional_comp_dfs,
    conditional_comp_sdfs,
    linear_pipeline,
    token_ring,
)
from repro.dfs.translation import to_petri_net
from repro.exceptions import CompilationError, SafenessOverflowError
from repro.petri.batch import (
    ColumnarReachabilityGraph,
    WordTables,
    dedup_rows,
    dedup_rows_argmin,
    explore_batch,
    int_to_words,
    merge_sorted_index,
    numpy_available,
    pack_mask_rows,
    shard_rows,
    unpack_mask_rows,
    words_to_int,
)
from repro.petri.compiled import CompiledNet, explore_compiled
from repro.petri.net import PetriNet
from repro.petri.properties import (
    check_boundedness,
    check_deadlock,
    check_mutual_exclusion,
    check_persistence,
)
from repro.petri.reachability import build_reachability_graph
from repro.reach.evaluator import find_witnesses, holds_somewhere


EXAMPLE_MODELS = [
    pytest.param(lambda: conditional_comp_dfs(comp_stages=1), id="conditional-dfs-1"),
    pytest.param(lambda: conditional_comp_dfs(comp_stages=2), id="conditional-dfs-2"),
    pytest.param(lambda: conditional_comp_sdfs(comp_stages=1), id="conditional-sdfs"),
    pytest.param(lambda: linear_pipeline(stages=3), id="linear-pipeline"),
    pytest.param(lambda: token_ring(registers=4, tokens=1), id="token-ring-4-1"),
    pytest.param(lambda: token_ring(registers=5, tokens=2), id="token-ring-5-2"),
    pytest.param(lambda: build_pipeline_model(2, static_prefix=1), id="ope2"),
    pytest.param(lambda: build_pipeline_model(3, static_prefix=1, holes=[2]),
                 id="ope3-hole2"),
]


def both_graphs(net, max_states=200000):
    compiled = CompiledNet.compile(net)
    sequential = explore_compiled(compiled, max_states=max_states)
    batch = explore_batch(compiled, max_states=max_states)
    assert isinstance(batch, ColumnarReachabilityGraph)
    return sequential, batch


def assert_identical(sequential, batch, tag=""):
    assert batch._mask_states == sequential._mask_states, tag
    assert batch._mask_edges == sequential._mask_edges, tag
    assert batch._parents == sequential._parents, tag
    assert batch._frontier_indices == sequential._frontier_indices, tag
    assert batch.truncated == sequential.truncated, tag


class TestDifferentialExamples:
    @pytest.mark.parametrize("model", EXAMPLE_MODELS)
    def test_bit_identical_graphs(self, model):
        net = to_petri_net(model())
        sequential, batch = both_graphs(net)
        assert_identical(sequential, batch)
        assert len(batch) == len(sequential)
        assert batch.edge_count() == sequential.edge_count()
        assert batch.deadlocks() == sequential.deadlocks()
        assert batch.states == sequential.states

    @pytest.mark.parametrize("model", EXAMPLE_MODELS)
    def test_truncation_parity(self, model):
        net = to_petri_net(model())
        for max_states in (1, 2, 5, 17, 100):
            sequential, batch = both_graphs(net, max_states=max_states)
            assert_identical(sequential, batch, "max_states={}".format(max_states))
            assert batch.frontier == sequential.frontier
            assert batch.deadlocks() == sequential.deadlocks()

    @pytest.mark.parametrize("model", EXAMPLE_MODELS)
    def test_traces_and_membership(self, model):
        net = to_petri_net(model())
        sequential, batch = both_graphs(net)
        for marking in sequential.states:
            assert marking in batch
            assert batch.trace_to(marking) == sequential.trace_to(marking)
            assert batch.enabled(marking) == sequential.enabled(marking)
            assert batch.is_expanded(marking) == sequential.is_expanded(marking)

    def test_property_verdicts_identical(self):
        net = to_petri_net(conditional_comp_dfs(comp_stages=2))
        sequential, batch = both_graphs(net)
        for check in (check_deadlock, check_persistence):
            left, right = check(sequential), check(batch)
            assert left.holds == right.holds
            assert left.details == right.details
            assert [w["marking"] for w in left.witnesses] == \
                [w["marking"] for w in right.witnesses]
        assert check_boundedness(sequential, bound=1).holds == \
            check_boundedness(batch, bound=1).holds

    def test_persistence_witnesses_identical_on_hazard(self):
        net = PetriNet("hazard")
        net.add_place("g", tokens=1)
        net.add_place("g_done")
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("kill")
        net.add_transition("observe")
        net.add_arc("g", "kill")
        net.add_arc("kill", "g_done")
        net.add_arc("p", "observe")
        net.add_arc("observe", "q")
        net.add_read_arc("g", "observe")
        sequential, batch = both_graphs(net)
        left = check_persistence(sequential)
        right = check_persistence(batch)
        assert left.holds is False and right.holds is False
        assert left.details == right.details
        strip = lambda ws: [{k: w[k] for k in ("marking", "fired", "disabled")}
                            for w in ws]
        assert strip(left.witnesses) == strip(right.witnesses)

    def test_mutual_exclusion_vectorised_path(self):
        net = to_petri_net(conditional_comp_dfs(comp_stages=1))
        sequential, batch = both_graphs(net)
        assert batch.count_and_collect_required is not None
        for pair in [("Mt_ctrl_1", "Mf_ctrl_1"), ("M_in_1", "M_out_1"),
                     ("M_in_1", "M_in_0")]:
            left = check_mutual_exclusion(sequential, *pair)
            right = check_mutual_exclusion(batch, *pair)
            assert left.holds == right.holds
            assert left.details == right.details
            assert [w["marking"] for w in left.witnesses] == \
                [w["marking"] for w in right.witnesses]

    def test_reach_witnesses_identical(self):
        net = to_petri_net(conditional_comp_dfs(comp_stages=1))
        sequential, batch = both_graphs(net)
        for expression in ['$"M_in_1"', '$"M_r1_1" & $"Mf_ctrl_1"',
                           'tokens(M_ctrl_1) >= 1 -> !$"C_cond_1"',
                           '!$"M_in_1" | $"M_out_1"']:
            left = find_witnesses(expression, sequential)
            right = find_witnesses(expression, batch)
            assert [w["marking"] for w in left] == [w["marking"] for w in right]
            assert [len(w["trace"]) for w in left] == \
                [len(w["trace"]) for w in right]
            assert holds_somewhere(expression, sequential) == \
                holds_somewhere(expression, batch)

    def test_overflow_detected_like_sequential(self):
        net = PetriNet("overflow")
        net.add_place("p", tokens=1)
        net.add_place("q", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        compiled = CompiledNet.compile(net)
        with pytest.raises(SafenessOverflowError):
            explore_batch(compiled)


class TestEngineSelection:
    def test_auto_prefers_batch_when_numpy_present(self):
        net = to_petri_net(linear_pipeline(stages=1))
        graph = build_reachability_graph(net)
        assert isinstance(graph, ColumnarReachabilityGraph)

    def test_forced_batch_engine(self):
        net = to_petri_net(token_ring())
        graph = build_reachability_graph(net, engine="batch")
        assert isinstance(graph, ColumnarReachabilityGraph)

    def test_no_numpy_env_falls_back_to_compiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert not numpy_available()
        net = to_petri_net(token_ring())
        graph = build_reachability_graph(net)
        assert not isinstance(graph, ColumnarReachabilityGraph)
        with pytest.raises(CompilationError):
            build_reachability_graph(net, engine="batch")

    def test_forced_batch_without_numpy_raises_even_sharded(self, monkeypatch):
        """workers>1 must not soften the engine=\"batch\" contract."""
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        net = to_petri_net(token_ring())
        with pytest.raises(CompilationError):
            build_reachability_graph(net, engine="batch", workers=2)

    def test_engine_choice_binds_the_sharded_backend(self, monkeypatch):
        """engine=\"compiled\" forces pure-int shard workers, \"batch\" the
        vectorised ones; either way the graph is the sequential one."""
        calls = {}

        def fake_sharded(compiled, marking, max_states, workers, batch,
                         spill=None, checkpoint=None):
            calls["batch"] = batch
            from repro.petri.compiled import explore_compiled
            return explore_compiled(compiled, marking, max_states=max_states)

        import repro.parallel.sharded as sharded_module
        monkeypatch.setattr(sharded_module, "explore_sharded", fake_sharded)
        net = to_petri_net(token_ring())
        reference = build_reachability_graph(net, engine="compiled")
        for engine, expected in (("compiled", False), ("batch", True),
                                 ("auto", None)):
            graph = build_reachability_graph(net, engine=engine, workers=2)
            assert calls["batch"] is expected, engine
            assert graph._mask_states == reference._mask_states

    def test_batch_falls_back_to_explicit_on_unsafe_net(self):
        net = PetriNet("unsafe")
        net.add_place("src", tokens=2)
        net.add_place("sink")
        net.add_transition("move")
        net.add_arc("src", "move")
        net.add_arc("move", "sink")
        graph = build_reachability_graph(net)
        assert not isinstance(graph, ColumnarReachabilityGraph)
        assert len(graph) == 3


class TestPrimitives:
    def test_int_word_roundtrip(self):
        for words in (1, 2, 4):
            for value in (0, 1, (1 << 64) - 1, 1 << 64, (1 << (64 * words)) - 1):
                value %= 1 << (64 * words)
                assert words_to_int(int_to_words(value, words)) == value

    def test_shard_rows_matches_python_hash(self):
        from repro.parallel.sharded import shard_of
        rng = np.random.default_rng(11)
        for words in (1, 2, 3, 5):
            rows = rng.integers(0, 1 << 64, size=(512, words), dtype=np.uint64)
            rows[0] = 0
            rows[1] = (1 << 64) - 1
            # Multiples of the hash prime are the edge case of the reduction.
            prime_words = int_to_words(((1 << 61) - 1) * 3, words)
            rows[2] = prime_words
            states = [words_to_int(row) for row in rows]
            for workers in (1, 2, 3, 7, 127):
                assert shard_rows(rows, workers).tolist() == \
                    [shard_of(state, workers) for state in states]

    def test_mask_rows_roundtrip(self):
        rng = np.random.default_rng(5)
        for transitions in (1, 7, 8, 9, 130):
            enabled = rng.integers(0, 2, size=(20, transitions)).astype(bool)
            packed = pack_mask_rows(enabled)
            assert packed.shape == (20, (transitions + 7) // 8)
            restored = unpack_mask_rows(packed, transitions).astype(bool)
            assert (restored == enabled).all()
            # The packed bytes equal the int mask little-endian encoding.
            for row, bits in zip(packed, enabled):
                mask = sum(1 << i for i, bit in enumerate(bits) if bit)
                assert row.tobytes() == mask.to_bytes(len(row), "little")

    def test_dedup_rows_groups_and_min_provenance(self):
        rows = np.asarray([[3], [1], [3], [2], [1]], dtype=np.uint64)
        hashes = rows[:, 0]
        provenance = np.asarray([50, 40, 10, 30, 20], dtype=np.int64)
        order, group_of, group_rows, _, group_prov = dedup_rows(
            rows, hashes, provenance, 1)
        by_state = {int(state): int(prov)
                    for (state,), prov in zip(group_rows, group_prov)}
        assert by_state == {1: 20, 2: 30, 3: 10}
        # Every occurrence maps back to its group.
        targets = np.empty(len(order), dtype=np.int64)
        targets[order] = group_rows[group_of, 0]
        assert targets.tolist() == rows[:, 0].tolist()

    def test_dedup_rows_argmin_heads_are_min_occurrences(self):
        rows = np.asarray([[3], [1], [3], [2], [1]], dtype=np.uint64)
        hashes = rows[:, 0]
        provenance = np.asarray([50, 40, 10, 30, 20], dtype=np.int64)
        order, group_of, heads = dedup_rows_argmin(rows, hashes, provenance, 1)
        resolved = {int(rows[h, 0]): int(provenance[h]) for h in heads}
        assert resolved == {1: 20, 2: 30, 3: 10}

    def test_merge_sorted_index(self):
        keys = np.asarray([2, 5, 9], dtype=np.uint64)
        idx = np.asarray([0, 1, 2], dtype=np.int64)
        merged_keys, merged_idx = merge_sorted_index(
            keys, idx, np.asarray([7, 1, 5], dtype=np.uint64),
            np.asarray([3, 4, 5], dtype=np.int64))
        assert merged_keys.tolist() == [1, 2, 5, 5, 7, 9]
        assert sorted(merged_idx.tolist()) == [0, 1, 2, 3, 4, 5]

    def test_hash_collisions_stay_exact(self, monkeypatch):
        """Force every row hash equal: dedup and probes must stay exact.

        Only meaningful on multi-word nets -- single-word rows are their
        own (collision-free) hash by construction.
        """
        net = to_petri_net(build_pipeline_model(3, static_prefix=1))
        compiled = CompiledNet.compile(net)
        assert WordTables(compiled).words >= 2
        # Bounded: with every hash colliding the probes degrade to linear
        # scans, which is exactly the (slow but exact) path under test.
        sequential = explore_compiled(compiled, max_states=2000)
        monkeypatch.setattr(
            WordTables, "hash_rows",
            lambda self, rows: np.zeros(len(rows), dtype=np.uint64))
        batch = explore_batch(compiled, max_states=2000)
        assert_identical(sequential, batch, "degenerate hash")

    def test_multi_word_net_spans_words(self):
        net = to_petri_net(build_pipeline_model(3, static_prefix=1))
        compiled = CompiledNet.compile(net)
        tables = WordTables(compiled)
        assert tables.words >= 2
        graph = explore_batch(compiled, max_states=5000)
        assert graph.tables.words == tables.words
        sequential = explore_compiled(compiled, max_states=5000)
        assert_identical(sequential, graph)
