"""Tests for the OPE case study: reference model, functional pipeline, DFS models."""

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.ope.circuit import ope_netlist, ope_silicon_model
from repro.ope.functional import OpePipelineFunctional
from repro.ope.pipeline import build_reconfigurable_ope_pipeline, build_static_ope_pipeline
from repro.ope.reference import OpeReference, ordinal_ranks, paper_example_table, rank_of_new_item
from repro.circuits.mapping import SyncStyle, mapping_summary
from repro.silicon.chip import SyncStructure


class TestOrdinalRanks:
    def test_footnote_example(self):
        assert ordinal_ranks([2, 0, 1, 7]) == [3, 1, 2, 4]

    def test_paper_window_example(self):
        assert ordinal_ranks([3, 1, 4, 1, 5, 9]) == [3, 1, 4, 2, 5, 6]

    def test_ties_resolved_by_position(self):
        assert ordinal_ranks([5, 5, 5]) == [1, 2, 3]

    def test_rank_is_a_permutation(self):
        rng = random.Random(1)
        for _ in range(20):
            window = [rng.randrange(50) for _ in range(8)]
            assert sorted(ordinal_ranks(window)) == list(range(1, 9))

    def test_rank_of_new_item(self):
        assert rank_of_new_item([3, 1, 4], 2) == 2
        assert rank_of_new_item([3, 1, 4], 10) == 4
        assert rank_of_new_item([], 7) == 1


class TestOpeReference:
    def test_paper_table(self):
        rows = paper_example_table()
        assert [row["rank_list"] for row in rows] == [
            (3, 1, 4, 2, 5, 6), (1, 4, 2, 5, 6, 3), (3, 1, 4, 6, 2, 5)]
        assert [row["index"] for row in rows] == [1, 2, 3]

    def test_encode_window_count(self):
        reference = OpeReference(6)
        assert len(reference.encode(range(10))) == 5

    def test_short_stream_produces_nothing(self):
        reference = OpeReference(6)
        assert reference.encode([1, 2, 3]) == []
        assert reference.encode_last([1, 2, 3]) is None

    def test_encode_last(self):
        assert OpeReference(3).encode_last([5, 1, 9, 2]) == ordinal_ranks([1, 9, 2])

    def test_checksum_is_deterministic_and_sensitive(self):
        reference = OpeReference(4)
        stream = [3, 1, 4, 1, 5, 9, 2, 6]
        assert reference.checksum(stream) == reference.checksum(stream)
        assert reference.checksum(stream) != reference.checksum(stream[::-1])

    def test_invalid_window_size(self):
        with pytest.raises(ConfigurationError):
            OpeReference(0)


class TestFunctionalPipeline:
    def test_matches_reference_on_random_streams(self):
        rng = random.Random(7)
        for depth in (1, 2, 3, 6, 10):
            stream = [rng.randrange(1000) for _ in range(120)]
            assert OpePipelineFunctional(depth).process(stream) == OpeReference(depth).encode(stream)

    def test_matches_reference_with_many_ties(self):
        rng = random.Random(8)
        stream = [rng.randrange(4) for _ in range(100)]
        assert OpePipelineFunctional(5).process(stream) == OpeReference(5).encode(stream)

    def test_latency_before_window_fills(self):
        pipeline = OpePipelineFunctional(4)
        outputs = [pipeline.push(i) for i in range(6)]
        assert outputs[:3] == [None, None, None]
        assert outputs[3] is not None

    def test_internal_consistency_check(self):
        pipeline = OpePipelineFunctional(5)
        pipeline.process(range(20))
        assert pipeline.check_against_reference()

    def test_reset(self):
        pipeline = OpePipelineFunctional(3)
        pipeline.process([5, 6, 7])
        pipeline.reset()
        assert pipeline.window == []
        assert not pipeline.full

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            OpePipelineFunctional(0)


class TestOpeDfsPipelines:
    def test_static_pipeline_is_fully_static(self):
        pipeline = build_static_ope_pipeline(stages=4)
        assert len(pipeline.static_stages) == 4
        assert pipeline.reconfigurable_stages == []

    def test_reconfigurable_pipeline_structure(self):
        pipeline, configuration = build_reconfigurable_ope_pipeline(stages=4, depth=3)
        assert len(pipeline.static_stages) == 1
        assert len(pipeline.reconfigurable_stages) == 3
        assert configuration.current_depth() == 3
        # The s2 optimisation: a single shared control loop.
        assert len(pipeline.stage(2).control_loops) == 1
        assert len(pipeline.stage(3).control_loops) == 2

    def test_depth_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            build_reconfigurable_ope_pipeline(stages=4, depth=1)
        with pytest.raises(ConfigurationError):
            build_reconfigurable_ope_pipeline(stages=4, depth=9)
        with pytest.raises(ConfigurationError):
            build_static_ope_pipeline(stages=0)

    def test_function_annotations_for_mapping(self):
        pipeline = build_static_ope_pipeline(stages=2)
        functions = {pipeline.dfs.node(name).function for name in pipeline.dfs.logic_nodes}
        assert {"compare", "rank", "aggregate"} <= functions


class TestOpeCircuit:
    def test_netlist_instance_count_grows_with_stages(self):
        small, _ = build_reconfigurable_ope_pipeline(stages=3, depth=3)
        large, _ = build_reconfigurable_ope_pipeline(stages=5, depth=5)
        small_summary = mapping_summary(ope_netlist(small))
        large_summary = mapping_summary(ope_netlist(large))
        assert large_summary["instances"] > small_summary["instances"]
        assert large_summary["area_um2"] > small_summary["area_um2"]

    def test_netlist_sync_style_selectable(self):
        pipeline, _ = build_reconfigurable_ope_pipeline(stages=3, depth=3)
        chain = ope_netlist(pipeline, sync_style=SyncStyle.DAISY_CHAIN)
        tree = ope_netlist(pipeline, sync_style=SyncStyle.TREE)
        assert chain.component_counts().get("c_element", 0) == \
            tree.component_counts().get("c_element", 0)

    def test_silicon_model_defaults_match_fabricated_chip(self):
        static = ope_silicon_model(18, reconfigurable=False)
        reconfigurable = ope_silicon_model(18, reconfigurable=True)
        assert static.sync_structure is SyncStructure.TREE
        assert reconfigurable.sync_structure is SyncStructure.DAISY_CHAIN
        assert reconfigurable.cycle_time_ns() > static.cycle_time_ns()
