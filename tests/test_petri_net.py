"""Tests for repro.petri.net."""

import pytest

from repro.exceptions import ModelError
from repro.petri.marking import Marking
from repro.petri.net import ArcKind, PetriNet


def build_producer_consumer():
    """p -> t -> q with one token in p."""
    net = PetriNet("pc")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    return net


class TestConstruction:
    def test_duplicate_place_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(ValueError):
            net.add_place("p")

    def test_arc_must_connect_place_and_transition(self):
        net = PetriNet()
        net.add_place("p")
        net.add_place("q")
        with pytest.raises(ModelError):
            net.add_arc("p", "q")

    def test_arc_kinds_recorded(self):
        net = build_producer_consumer()
        kinds = {arc.kind for arc in net.arcs}
        assert kinds == {ArcKind.CONSUME, ArcKind.PRODUCE}

    def test_read_arc(self):
        net = build_producer_consumer()
        net.add_place("guard", tokens=1)
        net.add_read_arc("guard", "t")
        assert "guard" in net.read_places("t")
        assert "guard" in net.preset("t")
        assert "guard" not in net.consumed_places("t")


class TestSemantics:
    def test_enabled_and_fire(self):
        net = build_producer_consumer()
        marking = net.initial_marking()
        assert net.is_enabled("t", marking)
        successor = net.fire("t", marking)
        assert successor == Marking({"q": 1})

    def test_disabled_without_token(self):
        net = build_producer_consumer()
        assert not net.is_enabled("t", Marking())

    def test_read_arc_requires_token_but_does_not_consume(self):
        net = build_producer_consumer()
        net.add_place("guard", tokens=0)
        net.add_read_arc("guard", "t")
        assert not net.is_enabled("t", net.initial_marking())
        net.place("guard").tokens = 1
        marking = net.initial_marking()
        successor = net.fire("t", marking)
        assert successor["guard"] == 1  # unchanged

    def test_fire_disabled_raises(self):
        net = build_producer_consumer()
        with pytest.raises(ModelError):
            net.fire("t", Marking())

    def test_capacity_violation_raises(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q", tokens=1, capacity=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        with pytest.raises(ModelError):
            net.fire("t", net.initial_marking())

    def test_enabled_transitions_sorted(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        for name in ("t_b", "t_a"):
            net.add_transition(name)
            net.add_arc("p", name)
            net.add_arc(name, "p")
        assert net.enabled_transitions(net.initial_marking()) == ["t_a", "t_b"]


class TestStructure:
    def test_presets_and_postsets(self):
        net = build_producer_consumer()
        assert net.preset("t") == {"p"}
        assert net.postset("t") == {"q"}
        assert net.place_postset("p") == {"t"}
        assert net.place_preset("q") == {"t"}

    def test_initial_marking_round_trip(self):
        net = build_producer_consumer()
        net.set_initial_marking({"q": 1})
        assert net.initial_marking() == Marking({"q": 1})

    def test_validate_flags_disconnected_transition(self):
        net = PetriNet()
        net.add_transition("lonely")
        with pytest.raises(ModelError):
            net.validate()

    def test_unknown_lookup_raises(self):
        net = PetriNet()
        with pytest.raises(ModelError):
            net.place("missing")
        with pytest.raises(ModelError):
            net.transition("missing")
