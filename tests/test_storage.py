"""Tests for the out-of-core storage layer (repro.petri.storage).

Two contracts matter here.  First, the storage primitives: an
:class:`ArrayStore` must hold exactly the rows written to it whether the
backing lives in RAM or on an unlinked memmap, the pool must convert every
store at once the moment the budget is crossed, and spill files must never
outlive the exploration -- on success, on an exception, and when a
supervised worker is killed mid-flight.  Second, the engine contract:
a disk-backed exploration is the *same* exploration, bit for bit --
states, edges, parents, frontier and truncation all identical to the
in-RAM graph, on both the batch and the sharded backends.
"""

import glob
import os
import time

import pytest

np = pytest.importorskip("numpy")

from repro.petri.batch import numpy_available as _numpy_available

pytestmark = pytest.mark.skipif(
    not _numpy_available(), reason="batch engine disabled (REPRO_NO_NUMPY)")

from repro.campaign.jobs import VerificationJob, build_pipeline_model
from repro.campaign.runner import run_campaign
from repro.campaign.scenario import ScenarioSpec, generate_scenarios
from repro.dfs.examples import conditional_comp_dfs, linear_pipeline, token_ring
from repro.dfs.translation import to_petri_net
from repro.exceptions import ConfigurationError, SafenessOverflowError
from repro.parallel.sharded import explore_sharded
from repro.parallel.supervisor import run_supervised
from repro.petri.batch import ColumnarReachabilityGraph, explore_batch
from repro.petri.compiled import CompiledNet, explore_compiled
from repro.petri.net import PetriNet
from repro.petri.reachability import build_reachability_graph
from repro.petri.storage import (
    ArrayStore,
    SortedIndexStore,
    SpillConfig,
    SpillPool,
)
from repro.verification.verifier import Verifier


def _spill_files(directory):
    return sorted(glob.glob(os.path.join(str(directory), "repro-spill-*")))


def _assert_identical(reference, other, tag):
    assert other._mask_states == reference._mask_states, tag
    assert other._mask_edges == reference._mask_edges, tag
    assert other._parents == reference._parents, tag
    assert other._frontier_indices == reference._frontier_indices, tag
    assert other.truncated == reference.truncated, tag


# -- configuration resolution -------------------------------------------------


class TestSpillConfig:
    def test_disabled_when_nothing_is_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPILL_DIR", raising=False)
        monkeypatch.delenv("REPRO_SPILL_BYTES", raising=False)
        assert SpillConfig.resolve() is None

    def test_directory_alone_means_spill_from_the_start(self, monkeypatch,
                                                        tmp_path):
        monkeypatch.delenv("REPRO_SPILL_BYTES", raising=False)
        config = SpillConfig.resolve(spill_dir=str(tmp_path))
        assert config.directory == str(tmp_path)
        assert config.budget_bytes == 0

    def test_budget_alone_uses_the_system_temp_dir(self, monkeypatch):
        import tempfile
        monkeypatch.delenv("REPRO_SPILL_DIR", raising=False)
        config = SpillConfig.resolve(spill_bytes=1 << 20)
        assert config.budget_bytes == 1 << 20
        assert config.directory == tempfile.gettempdir()

    def test_environment_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SPILL_BYTES", "4096")
        config = SpillConfig.resolve()
        assert config.directory == str(tmp_path)
        assert config.budget_bytes == 4096

    def test_explicit_settings_win_over_the_environment(self, monkeypatch,
                                                        tmp_path):
        monkeypatch.setenv("REPRO_SPILL_DIR", "/nonexistent-env-dir")
        monkeypatch.setenv("REPRO_SPILL_BYTES", "1")
        config = SpillConfig.resolve(spill_dir=str(tmp_path), spill_bytes=99)
        assert config.directory == str(tmp_path)
        assert config.budget_bytes == 99

    def test_garbage_byte_count_is_rejected_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_BYTES", "lots")
        with pytest.raises(ConfigurationError):
            SpillConfig.resolve()


# -- the storage primitives ---------------------------------------------------


class TestArrayStore:
    def test_ram_append_and_geometric_growth(self):
        pool = SpillPool()
        store = ArrayStore(pool, "t", np.int64, capacity=2)
        for chunk in range(10):
            store.append(np.arange(chunk * 7, chunk * 7 + 7, dtype=np.int64))
        assert len(store) == 70
        assert not store.spilled
        np.testing.assert_array_equal(store.data, np.arange(70))
        # Geometric: capacity is a power-of-two multiple of the start, and
        # trim() releases the slack down to the exact length.
        assert len(store._backing) >= 70
        trimmed = store.trim()
        assert len(trimmed) == 70
        np.testing.assert_array_equal(trimmed, np.arange(70))

    def test_two_dimensional_rows(self):
        pool = SpillPool()
        store = ArrayStore(pool, "w", np.uint64, columns=3, capacity=1)
        rows = np.arange(30, dtype=np.uint64).reshape(10, 3)
        store.append(rows)
        assert store.data.shape == (10, 3)
        np.testing.assert_array_equal(store.data, rows)

    def test_budget_zero_spills_from_the_first_row(self, tmp_path):
        pool = SpillPool(SpillConfig(str(tmp_path), 0))
        store = ArrayStore(pool, "t", np.int64, capacity=4)
        assert pool.spilled and store.spilled
        store.append(np.arange(100, dtype=np.int64))
        np.testing.assert_array_equal(store.data, np.arange(100))
        assert isinstance(store._backing, np.memmap)

    def test_crossing_the_budget_converts_every_store_at_once(self, tmp_path):
        budget = 8 * 64  # room for the initial capacities, not for growth
        pool = SpillPool(SpillConfig(str(tmp_path), budget))
        a = ArrayStore(pool, "a", np.int64, capacity=4)
        b = ArrayStore(pool, "b", np.int64, capacity=4)
        a.append(np.arange(4, dtype=np.int64))
        b.append(np.arange(4, dtype=np.int64))
        assert not pool.spilled
        a.append(np.arange(4, 4096, dtype=np.int64))  # blows the budget
        assert pool.spilled and a.spilled and b.spilled
        np.testing.assert_array_equal(a.data, np.arange(4096))
        np.testing.assert_array_equal(b.data, np.arange(4))
        # A store registered after the spill is born disk-backed.
        c = ArrayStore(pool, "c", np.int64)
        assert c.spilled

    def test_spill_files_are_unlinked_immediately(self, tmp_path):
        pool = SpillPool(SpillConfig(str(tmp_path), 0))
        store = ArrayStore(pool, "t", np.int64)
        store.append(np.arange(1000, dtype=np.int64))
        assert pool.file_count >= 1
        assert _spill_files(tmp_path) == []
        pool.close()
        assert _spill_files(tmp_path) == []

    def test_traffic_counters_only_tick_once_spilled(self, tmp_path):
        ram = SpillPool()
        store = ArrayStore(ram, "t", np.int64)
        store.append(np.arange(10, dtype=np.int64))
        assert ram.stats()["write_bytes"] == 0
        assert ram.stats() == {
            "enabled": False, "spilled": False, "budget_bytes": None,
            "directory": None, "checkpoint": None,
            "write_bytes": 0, "read_bytes": 0, "files": 0}
        disk = SpillPool(SpillConfig(str(tmp_path), 0))
        spilled = ArrayStore(disk, "t", np.int64)
        spilled.append(np.arange(10, dtype=np.int64))
        disk.note_read(spilled.data.nbytes)
        stats = disk.stats()
        assert stats["enabled"] and stats["spilled"]
        assert stats["write_bytes"] == 80 and stats["read_bytes"] == 80
        assert stats["files"] >= 1

    def test_set_length_exposes_uninitialised_rows(self):
        pool = SpillPool()
        store = ArrayStore(pool, "t", np.int64, capacity=2)
        store.set_length(50)
        store.data[:] = 7
        assert len(store) == 50
        assert int(store.data.sum()) == 350

    def test_disk_trim_never_truncates_the_file(self, tmp_path):
        pool = SpillPool(SpillConfig(str(tmp_path), 0))
        store = ArrayStore(pool, "t", np.int64, capacity=2)
        store.append(np.arange(5, dtype=np.int64))
        trimmed = store.trim()
        assert len(trimmed) == 5
        # The over-allocated mapping is still valid (no downward ftruncate,
        # so touching the old view cannot SIGBUS).
        assert len(store._backing) >= 5
        np.testing.assert_array_equal(trimmed, np.arange(5))

    def test_pool_context_manager_closes_on_error_only(self, tmp_path):
        with SpillPool(SpillConfig(str(tmp_path), 0)) as pool:
            ArrayStore(pool, "t", np.int64).append(np.arange(3, dtype=np.int64))
        assert not pool.closed  # success: the graph owns the arrays now
        with pytest.raises(RuntimeError):
            with SpillPool(SpillConfig(str(tmp_path), 0)) as doomed:
                ArrayStore(doomed, "t", np.int64)
                raise RuntimeError("mid-exploration failure")
        assert doomed.closed
        assert _spill_files(tmp_path) == []


class TestSortedIndexStore:
    @pytest.mark.parametrize("budget", [None, 0])
    def test_merge_matches_a_global_sort(self, tmp_path, budget):
        config = None if budget is None else SpillConfig(str(tmp_path), budget)
        pool = SpillPool(config)
        index = SortedIndexStore(pool, "hash", np.uint64, np.int64)
        rng_keys = (np.arange(300, dtype=np.uint64) * 2654435761) % 1013
        all_keys = np.empty(0, dtype=np.uint64)
        all_idx = np.empty(0, dtype=np.int64)
        for start in range(0, 300, 50):
            keys = rng_keys[start:start + 50]
            idx = np.arange(start, start + 50, dtype=np.int64)
            index.merge(keys, idx)
            all_keys = np.concatenate([all_keys, keys])
            all_idx = np.concatenate([all_idx, idx])
        keys, idx = index.finalize()
        order = np.argsort(all_keys, kind="stable")
        np.testing.assert_array_equal(keys, all_keys[order])
        assert sorted(idx.tolist()) == sorted(all_idx.tolist())
        # Every (key, idx) pair survives the merges intact.
        assert (set(zip(keys.tolist(), idx.tolist()))
                == set(zip(all_keys.tolist(), all_idx.tolist())))


# -- disk-backed exploration is the same exploration --------------------------


def _example_models():
    return [
        ("conditional", conditional_comp_dfs()),
        ("ring", token_ring()),
        ("linear", linear_pipeline()),
        ("ope2", build_pipeline_model(2, static_prefix=1)),
        ("ope3-hole2", build_pipeline_model(3, static_prefix=1, holes=[2])),
    ]


class TestSpilledGraphIdentity:
    def test_batch_disk_backed_is_bit_identical(self, tmp_path):
        for name, dfs in _example_models():
            compiled = CompiledNet.compile(to_petri_net(dfs))
            for max_states in (1, 7, 200000):
                reference = explore_compiled(compiled, max_states=max_states)
                spilled = explore_batch(
                    compiled, max_states=max_states,
                    spill=SpillConfig(str(tmp_path), 0))
                _assert_identical(reference, spilled,
                                  "{} max_states={}".format(name, max_states))
                stats = spilled.exploration_stats["spill"]
                assert stats["spilled"] and stats["write_bytes"] > 0
                spilled.close()
        assert _spill_files(tmp_path) == []

    def test_sharded_disk_backed_is_bit_identical(self, tmp_path):
        for name, dfs in _example_models():
            compiled = CompiledNet.compile(to_petri_net(dfs))
            for max_states in (7, 200000):
                reference = explore_compiled(compiled, max_states=max_states)
                for workers in (2, 3):
                    spilled = explore_sharded(
                        compiled, max_states=max_states, workers=workers,
                        spill=SpillConfig(str(tmp_path), 0))
                    assert isinstance(spilled, ColumnarReachabilityGraph)
                    _assert_identical(
                        reference, spilled,
                        "{} max_states={} workers={}".format(
                            name, max_states, workers))
                    assert spilled.exploration_stats["spill"]["spilled"]
                    assert spilled.exchange_stats is not None
                    spilled.close()
        assert _spill_files(tmp_path) == []

    def test_mid_run_budget_crossing_is_bit_identical(self, tmp_path):
        """A graph that *starts* in RAM and spills partway stays identical."""
        dfs = build_pipeline_model(3, static_prefix=1, holes=[2])
        compiled = CompiledNet.compile(to_petri_net(dfs))
        reference = explore_compiled(compiled)
        spilled = explore_batch(compiled,
                                spill=SpillConfig(str(tmp_path), 1 << 12))
        _assert_identical(reference, spilled, "mid-run spill")
        assert spilled.exploration_stats["spill"]["spilled"]

    def test_spawn_workers_with_spill(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        compiled = CompiledNet.compile(to_petri_net(token_ring()))
        reference = explore_compiled(compiled)
        spilled = explore_sharded(compiled, workers=2,
                                  spill=SpillConfig(str(tmp_path), 0))
        _assert_identical(reference, spilled, "spawn+spill")
        assert _spill_files(tmp_path) == []

    def test_build_reachability_graph_env_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SPILL_BYTES", "1024")
        net = to_petri_net(token_ring())
        reference = explore_compiled(CompiledNet.compile(net))
        spilled = build_reachability_graph(net)
        _assert_identical(reference, spilled, "env knobs")
        assert spilled.exploration_stats["spill"]["spilled"]
        assert spilled.exploration_stats["spill"]["directory"] == str(tmp_path)


# -- lifecycle: caps, exceptions, kills ---------------------------------------


class TestSpillLifecycle:
    def test_mirror_cap_raises_an_actionable_error(self):
        net = to_petri_net(token_ring())
        graph = build_reachability_graph(net, engine="batch")
        graph.mirror_limit = 3  # the ring has more states than that
        with pytest.raises(ConfigurationError) as excinfo:
            graph._mask_states
        message = str(excinfo.value)
        assert "mirror" in message and "mirror_limit" in message
        with pytest.raises(ConfigurationError):
            graph._mask_edges
        graph.mirror_limit = None  # the documented opt-in
        reference = build_reachability_graph(net, engine="compiled")
        assert graph._mask_states == reference._mask_states

    def test_exception_mid_exploration_leaves_no_files(self, tmp_path):
        # An unsafe net blows up *during* batch exploration -- after the
        # spill pool has already opened disk backings.
        net = PetriNet("unsafe")
        net.add_place("src", tokens=1)
        net.add_place("mid", tokens=1)
        net.add_place("sink")
        net.add_transition("a")
        net.add_arc("src", "a")
        net.add_arc("a", "sink")
        net.add_transition("b")
        net.add_arc("mid", "b")
        net.add_arc("b", "sink")
        compiled = CompiledNet.compile(net)
        with pytest.raises(SafenessOverflowError):
            explore_batch(compiled, spill=SpillConfig(str(tmp_path), 0))
        assert _spill_files(tmp_path) == []

    def test_supervised_kill_leaves_no_files(self, tmp_path):
        """A worker SIGKILLed mid-exploration reclaims its spill space.

        The spill files are unlinked at creation, so even a hard kill --
        no atexit, no finally -- cannot leak disk space into the spill
        directory."""
        outcomes = run_supervised(
            [("doomed", _spill_then_hang, (str(tmp_path),))],
            parallelism=1, timeout=3.0)
        assert outcomes[0].status == "timeout"
        assert _spill_files(tmp_path) == []


def _spill_then_hang(spill_dir):
    """Supervised task: build a disk-backed graph, then outlive the deadline."""
    net = to_petri_net(build_pipeline_model(3, static_prefix=1))
    graph = build_reachability_graph(net, engine="batch",
                                     spill_dir=spill_dir, spill_bytes=0)
    assert graph.exploration_stats["spill"]["spilled"]
    time.sleep(60)


# -- stats plumbing: jobs, campaigns, schedulers ------------------------------


class TestExplorationStatsPlumbing:
    def test_batch_and_sharded_stats_shape(self, monkeypatch, tmp_path):
        # An ambient spill budget (the tests-spill CI job sets one) must
        # not leak into this in-RAM baseline check.
        monkeypatch.delenv("REPRO_SPILL_DIR", raising=False)
        monkeypatch.delenv("REPRO_SPILL_BYTES", raising=False)
        compiled = CompiledNet.compile(to_petri_net(token_ring()))
        batch = explore_batch(compiled)
        assert batch.exploration_stats["engine"] == "batch"
        sharded = explore_sharded(compiled, workers=2)
        assert sharded.exploration_stats["engine"] == "sharded"
        for stats in (batch.exploration_stats, sharded.exploration_stats):
            assert set(stats) == {"engine", "levels", "states", "edges",
                                  "phases", "spill", "checkpoint"}
            assert stats["states"] == len(batch)
            assert isinstance(stats["phases"], dict)
            assert stats["spill"]["spilled"] is False

    def test_verifier_surfaces_exploration_stats(self):
        dfs = build_pipeline_model(2, static_prefix=1)
        summary = Verifier(dfs, engine="batch").verify_all()
        assert summary.exploration is not None
        assert summary.exploration["engine"] == "batch"

    def test_job_attaches_stats_on_cold_runs_only(self, tmp_path):
        job = VerificationJob("j1", "pipeline",
                              kwargs={"stages": 2, "static_prefix": 1},
                              engine="batch", spill_dir=str(tmp_path),
                              spill_bytes=0)
        cold = job.run(cache=str(tmp_path / "cache"))
        assert cold["cache"] == "miss"
        assert cold["exploration"]["spill"]["spilled"]
        assert cold["exploration"]["spill"]["write_bytes"] > 0
        warm = job.run(cache=str(tmp_path / "cache"))
        assert warm["cache"] == "hit"
        assert "exploration" not in warm
        assert warm["verdict"] == cold["verdict"]

    def test_spill_knobs_stay_out_of_the_verdict_digest(self):
        base = dict(factory="pipeline",
                    kwargs={"stages": 2, "static_prefix": 1})
        plain = VerificationJob("a", **base)
        spilly = VerificationJob("a", spill_dir="/tmp/x", spill_bytes=123,
                                 **base)
        assert plain.options() == spilly.options()
        description = spilly.to_dict()
        assert description["spill_dir"] == "/tmp/x"
        assert description["spill_bytes"] == 123
        rebuilt = VerificationJob.from_dict(description)
        assert rebuilt.spill_dir == "/tmp/x" and rebuilt.spill_bytes == 123

    def test_scenario_spec_threads_the_spill_knobs(self):
        spec = ScenarioSpec(depths=(2,), spill_dir="/tmp/x", spill_bytes=42)
        jobs, _ = generate_scenarios(spec)
        assert jobs and all(job.spill_dir == "/tmp/x" for job in jobs)
        assert all(job.spill_bytes == 42 for job in jobs)

    def test_scheduler_aggregates_spill_totals_for_the_service(self, tmp_path):
        from repro.campaign.scheduler import CampaignScheduler
        scheduler = CampaignScheduler(parallelism=0)
        try:
            assert scheduler.stats()["spill"] == {
                "write_bytes": 0, "read_bytes": 0, "spilled_jobs": 0}
            job = VerificationJob("s1", "pipeline",
                                  kwargs={"stages": 2, "static_prefix": 1},
                                  engine="batch", spill_dir=str(tmp_path),
                                  spill_bytes=0)
            scheduler.submit(job).wait(60)
            totals = scheduler.stats()["spill"]
            assert totals["spilled_jobs"] == 1
            assert totals["write_bytes"] > 0
        finally:
            scheduler.shutdown()

    def test_campaign_report_aggregates_spill_totals(self, tmp_path):
        spec = ScenarioSpec(depths=(2,), engine="batch",
                            spill_dir=str(tmp_path), spill_bytes=0)
        jobs, skipped = generate_scenarios(spec)
        report = run_campaign(jobs, parallelism=0, cache_dir=None,
                              spec=spec, skipped=skipped)
        totals = report.spill_totals
        assert totals["spilled_jobs"] == len(jobs)
        assert totals["write_bytes"] > 0
        assert report.summary()["spill"] == totals
        assert _spill_files(tmp_path) == []
