"""Tests for the SDFS baseline package."""

import pytest

from repro.exceptions import ModelError
from repro.dfs.examples import conditional_comp_dfs, linear_pipeline, token_ring
from repro.dfs.nodes import NodeType, RegisterNode
from repro.sdfs.analysis import dataflow_depth, register_chains, static_summary
from repro.sdfs.model import StaticDataflowStructure, is_static, strip_dynamic


class TestStaticModel:
    def test_rejects_control_registers(self):
        sdfs = StaticDataflowStructure()
        with pytest.raises(ModelError):
            sdfs.add_control("c")

    def test_rejects_push_and_pop(self):
        sdfs = StaticDataflowStructure()
        with pytest.raises(ModelError):
            sdfs.add_push("p")
        with pytest.raises(ModelError):
            sdfs.add_pop("o")

    def test_rejects_dynamic_node_objects(self):
        sdfs = StaticDataflowStructure()
        with pytest.raises(ModelError):
            sdfs.add_node(RegisterNode("c", NodeType.CONTROL))

    def test_allows_static_nodes(self):
        sdfs = StaticDataflowStructure()
        sdfs.add_register("r", marked=True)
        sdfs.add_logic("f")
        sdfs.connect("r", "f")
        assert is_static(sdfs)

    def test_is_static_detects_dynamic_nodes(self):
        assert not is_static(conditional_comp_dfs())
        assert is_static(linear_pipeline())

    def test_strip_dynamic_demotes_registers(self):
        static = strip_dynamic(conditional_comp_dfs())
        assert is_static(static)
        assert static.kind("filt") is NodeType.REGISTER
        assert static.kind("ctrl") is NodeType.REGISTER
        assert static.edges == conditional_comp_dfs().edges


class TestAnalysis:
    def test_depth_of_linear_pipeline(self):
        assert dataflow_depth(linear_pipeline(stages=3)) == 4  # r0..r3

    def test_depth_of_cyclic_structure_is_none(self):
        assert dataflow_depth(token_ring()) is None

    def test_register_chains_of_linear_pipeline(self):
        chains = register_chains(linear_pipeline(stages=2))
        assert chains == [["r0", "r1", "r2"]]

    def test_register_chains_empty_for_cycles(self):
        assert register_chains(token_ring()) == []

    def test_static_summary_fields(self):
        summary = static_summary(linear_pipeline(stages=3, marked_first=True))
        assert summary["registers"] == 4
        assert summary["logic"] == 3
        assert summary["depth"] == 4
        assert summary["initial_tokens"] == 1
        assert summary["inputs"] == ["r0"]
        assert summary["outputs"] == ["r3"]
