"""Tests for the Reach predicate language (parser, AST, evaluator)."""

import pytest

from repro.exceptions import ReachEvaluationError, ReachSyntaxError
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import explore
from repro.reach.ast import And, Constant, Marked, Not, conjunction, disjunction
from repro.reach.evaluator import evaluate, find_witnesses, holds_somewhere
from repro.reach.parser import parse


class TestParser:
    def test_marked_place_dollar_syntax(self):
        expression = parse('$"M_r_1"')
        assert expression.places() == {"M_r_1"}
        assert expression.evaluate(Marking({"M_r_1": 1}))
        assert not expression.evaluate(Marking())

    def test_bare_identifier_is_marked(self):
        assert parse("p").evaluate(Marking({"p": 1}))

    def test_boolean_operators_and_precedence(self):
        expression = parse('a | b & !c')
        # & binds tighter than |.
        assert expression.evaluate(Marking({"a": 1}))
        assert expression.evaluate(Marking({"b": 1}))
        assert not expression.evaluate(Marking({"b": 1, "c": 1}))

    def test_parentheses(self):
        expression = parse('(a | b) & c')
        assert not expression.evaluate(Marking({"a": 1}))
        assert expression.evaluate(Marking({"a": 1, "c": 1}))

    def test_implication(self):
        expression = parse("a -> b")
        assert expression.evaluate(Marking())
        assert expression.evaluate(Marking({"a": 1, "b": 1}))
        assert not expression.evaluate(Marking({"a": 1}))

    def test_token_comparison(self):
        expression = parse("tokens(p) >= 2")
        assert expression.evaluate(Marking({"p": 2}))
        assert not expression.evaluate(Marking({"p": 1}))

    def test_constants(self):
        assert parse("true").evaluate(Marking())
        assert not parse("false").evaluate(Marking())

    def test_syntax_error_on_garbage(self):
        with pytest.raises(ReachSyntaxError):
            parse("a &&& b")

    def test_syntax_error_on_trailing_tokens(self):
        with pytest.raises(ReachSyntaxError):
            parse("a b")

    def test_empty_expression_rejected(self):
        with pytest.raises(ReachSyntaxError):
            parse("   ")


class TestAst:
    def test_operator_overloads(self):
        expression = Marked("a") & ~Marked("b")
        assert expression.evaluate(Marking({"a": 1}))
        assert not expression.evaluate(Marking({"a": 1, "b": 1}))

    def test_conjunction_of_empty_list_is_true(self):
        assert conjunction([]).evaluate(Marking())

    def test_disjunction_of_empty_list_is_false(self):
        assert not disjunction([]).evaluate(Marking())

    def test_places_collects_all_names(self):
        expression = And(Marked("x"), Not(Marked("y")))
        assert expression.places() == {"x", "y"}

    def test_constant_repr(self):
        assert repr(Constant(True)) == "true"


class TestEvaluator:
    def _net(self):
        net = PetriNet("n")
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        return net

    def test_evaluate_checks_place_names(self):
        net = self._net()
        with pytest.raises(ReachEvaluationError):
            evaluate('$"missing"', net.initial_marking(), net=net)

    def test_find_witnesses_with_traces(self):
        net = self._net()
        graph = explore(net)
        witnesses = find_witnesses('$"q"', graph)
        assert len(witnesses) == 1
        assert witnesses[0]["trace"] == ["t"]

    def test_holds_somewhere(self):
        graph = explore(self._net())
        assert holds_somewhere('$"q"', graph)
        assert not holds_somewhere('$"p" & $"q"', graph)

    def test_evaluate_accepts_ast_or_text(self):
        marking = Marking({"p": 1})
        assert evaluate(Marked("p"), marking)
        assert evaluate("p", marking)

    def test_evaluate_rejects_other_types(self):
        with pytest.raises(ReachEvaluationError):
            evaluate(42, Marking())
