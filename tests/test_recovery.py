"""Crash-recovery tier: checkpoints, journal replay, and injected faults.

Three layers of the crash story are exercised end to end:

* **exploration checkpoints** -- a run SIGKILLed mid-level (via the
  ``kill_worker@level`` fault) leaves a per-level manifest next to its
  columnar arrays; the resumed run restarts from the last complete level
  and produces a graph **bit-identical** to an uninterrupted one (asserted
  by hashing every array);
* **service durability** -- a daemon SIGKILLed mid-campaign and restarted
  with the same ``--state-dir`` answers old ticket ids: finished tickets
  from the journal, in-flight ones by re-running;
* **fault sites** -- ``io_error@write`` surfaces as :class:`FaultError`
  from the spill layer, ``kill_worker@task`` crashes a supervised worker
  (contained as a ``"crashed"`` outcome), ``solver_crash@query`` kills the
  z3 child mid-query and the pipe solver respawns it once, transparently.
"""

import hashlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import time
import urllib.error

import pytest

from repro.dfs.examples import linear_pipeline
from repro.dfs.translation import to_petri_net
from repro.parallel.supervisor import run_supervised
from repro.petri.batch import numpy_available
from repro.petri.reachability import build_reachability_graph
from repro.service.client import ServiceClient, ServiceClientError
from repro.utils import faults
from repro.utils.faults import FaultError
from repro.utils.journal import read_journal

SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="columnar checkpoints need NumPy")

#: Child process: explore linear_pipeline(4) and print a graph digest.
#: Run with a checkpoint directory (or "-") and a worker count; faults are
#: injected through the inherited REPRO_FAULTS environment.
EXPLORER = '''
import hashlib, json, sys

sys.path.insert(0, {src!r})

from repro.dfs.examples import linear_pipeline
from repro.dfs.translation import to_petri_net
from repro.petri.reachability import build_reachability_graph


def digest(graph):
    material = hashlib.sha256()
    for array in (graph._words, graph._edge_data, graph._edge_offsets,
                  graph._parents_arr, graph._frontier_arr):
        material.update(array.tobytes())
    return material.hexdigest()


checkpoint = None if sys.argv[1] == "-" else sys.argv[1]
workers = int(sys.argv[2])
net = to_petri_net(linear_pipeline(4))
graph = build_reachability_graph(net, engine="batch", workers=workers,
                                 resume=checkpoint)
print(json.dumps({{
    "states": len(graph),
    "truncated": bool(graph.truncated),
    "digest": digest(graph),
    "resumed_from": graph.exploration_stats["checkpoint"]["resumed_from_level"],
}}))
'''.format(src=str(SRC_DIR))


def _run_explorer(checkpoint, workers=0, fault=None):
    """Run the explorer child; return (returncode, parsed stdout or None)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULTS_SEED", None)
    argv = [sys.executable, "-c", EXPLORER, checkpoint or "-", str(workers)]
    if fault:
        # A faulted run is expected to die by SIGKILL.  Don't capture its
        # output: sharded worker processes inherit the pipe ends and may
        # outlive the killed coordinator briefly, which would make
        # ``communicate`` wait on an EOF that never comes.
        env["REPRO_FAULTS"] = fault
        process = subprocess.Popen(argv, stdout=subprocess.DEVNULL,
                                   stderr=subprocess.DEVNULL, env=env)
        return process.wait(timeout=300), None
    completed = subprocess.run(argv, capture_output=True, text=True, env=env,
                               timeout=300)
    payload = None
    if completed.returncode == 0:
        payload = json.loads(completed.stdout)
    return completed.returncode, payload


@pytest.fixture
def fault_plan(monkeypatch):
    """Configure in-process fault injection for one test, then clear it."""
    def arm(spec, seed=None):
        monkeypatch.setenv("REPRO_FAULTS", spec)
        if seed is not None:
            monkeypatch.setenv("REPRO_FAULTS_SEED", str(seed))
        faults.reset()
    yield arm
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    faults.reset()


# -- exploration checkpoint/resume --------------------------------------------


@needs_numpy
class TestCheckpointResume:
    def test_completed_run_discards_its_checkpoint_files(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt")
        net = to_petri_net(linear_pipeline(4))
        reference = build_reachability_graph(net, engine="batch")
        graph = build_reachability_graph(net, engine="batch",
                                         resume=checkpoint)
        assert len(graph) == len(reference)
        assert graph._mask_states == reference._mask_states
        assert os.listdir(checkpoint) == []

    def test_io_fault_keeps_checkpoint_and_resume_is_bit_identical(
            self, tmp_path, fault_plan):
        """A mid-exploration write error leaves a resumable checkpoint."""
        checkpoint = str(tmp_path / "ckpt")
        net = to_petri_net(linear_pipeline(4))
        reference = build_reachability_graph(net, engine="batch")
        fault_plan("io_error@write=40")
        with pytest.raises(FaultError):
            build_reachability_graph(net, engine="batch", resume=checkpoint)
        assert "checkpoint.json" in os.listdir(checkpoint)
        fault_plan("")  # disarm
        resumed = build_reachability_graph(net, engine="batch",
                                           resume=checkpoint)
        stats = resumed.exploration_stats["checkpoint"]
        assert stats["resumed_from_level"] >= 1
        assert resumed._mask_states == reference._mask_states
        assert resumed._mask_edges == reference._mask_edges
        assert resumed._parents == reference._parents
        assert os.listdir(checkpoint) == []

    def test_foreign_checkpoint_is_ignored_not_resumed(self, tmp_path,
                                                       fault_plan):
        """A checkpoint of a different exploration starts a fresh run."""
        checkpoint = str(tmp_path / "ckpt")
        net = to_petri_net(linear_pipeline(4))
        fault_plan("io_error@write=40")
        with pytest.raises(FaultError):
            build_reachability_graph(net, engine="batch", resume=checkpoint)
        fault_plan("")
        # Same net, different max_states: a different exploration identity.
        reference = build_reachability_graph(net, engine="batch",
                                             max_states=50)
        other = build_reachability_graph(net, engine="batch", max_states=50,
                                         resume=checkpoint)
        assert other.exploration_stats["checkpoint"]["resumed_from_level"] \
            is None
        assert len(other) == len(reference)
        assert other.truncated == reference.truncated

    def test_corrupt_manifest_degrades_to_a_fresh_run(self, tmp_path,
                                                      fault_plan):
        checkpoint = str(tmp_path / "ckpt")
        net = to_petri_net(linear_pipeline(4))
        fault_plan("io_error@write=40")
        with pytest.raises(FaultError):
            build_reachability_graph(net, engine="batch", resume=checkpoint)
        fault_plan("")
        with open(os.path.join(checkpoint, "checkpoint.json"), "w") as handle:
            handle.write("{ not json")
        reference = build_reachability_graph(net, engine="batch")
        graph = build_reachability_graph(net, engine="batch",
                                         resume=checkpoint)
        assert graph.exploration_stats["checkpoint"]["resumed_from_level"] \
            is None
        assert graph._mask_states == reference._mask_states


@needs_numpy
class TestKillResume:
    """SIGKILL mid-level, resume, diff -- the acceptance criterion."""

    def test_sigkilled_batch_exploration_resumes_bit_identical(self,
                                                               tmp_path):
        checkpoint = str(tmp_path / "ckpt")
        code, reference = _run_explorer(None)
        assert code == 0
        code, _ = _run_explorer(checkpoint, fault="kill_worker@level=10")
        assert code == -signal.SIGKILL
        assert "checkpoint.json" in os.listdir(checkpoint)
        code, resumed = _run_explorer(checkpoint)
        assert code == 0
        assert resumed["resumed_from"] >= 1
        assert resumed["digest"] == reference["digest"]
        assert resumed["states"] == reference["states"]
        assert os.listdir(checkpoint) == []  # zero leftovers after success

    def test_sigkilled_sharded_exploration_resumes_via_batch(self, tmp_path):
        """The sharded coordinator's leftover manifest resumes (batch side).

        Level-boundary store layouts are identical across engines, so a
        checkpoint cut by killing the sharded coordinator restores into
        the single-process engine bit for bit.
        """
        checkpoint = str(tmp_path / "ckpt")
        code, reference = _run_explorer(None)
        assert code == 0
        code, _ = _run_explorer(checkpoint, workers=2,
                                fault="kill_worker@level=10")
        assert code == -signal.SIGKILL
        assert "checkpoint.json" in os.listdir(checkpoint)
        code, resumed = _run_explorer(checkpoint)
        assert code == 0
        assert resumed["resumed_from"] >= 1
        assert resumed["digest"] == reference["digest"]


# -- fault sites --------------------------------------------------------------


class TestFaultSites:
    @needs_numpy
    def test_io_error_fault_raises_from_the_store_write_path(self,
                                                             fault_plan):
        fault_plan("io_error@write=1")
        net = to_petri_net(linear_pipeline(2))
        with pytest.raises(FaultError):
            build_reachability_graph(net, engine="batch")

    def test_kill_worker_task_fault_is_contained_as_crashed(self,
                                                            fault_plan):
        fault_plan("kill_worker@task=1")
        outcomes = {outcome.task_id: outcome
                    for outcome in run_supervised([("t1", _noop, ())],
                                                  parallelism=1, timeout=30.0)}
        assert outcomes["t1"].status == "crashed"

    def test_unfaulted_trigger_is_a_cheap_no_op(self, fault_plan):
        fault_plan("")
        assert faults.trigger("kill_worker", "level") is False


def _noop():
    return "ran"


# -- service client retries ---------------------------------------------------


class TestClientConnectionRetries:
    def _client(self, retries=3):
        return ServiceClient("http://127.0.0.1:1", connect_retries=retries,
                             connect_backoff=0.05, connect_backoff_cap=0.2)

    def test_refused_connections_retry_then_name_the_attempt_count(
            self, monkeypatch):
        client = self._client(retries=3)
        attempts = []
        delays = []

        def failing(method, path, payload=None):
            attempts.append(path)
            raise urllib.error.URLError(ConnectionRefusedError(111, "refused"))

        monkeypatch.setattr(client, "_open_once", failing)
        monkeypatch.setattr(time, "sleep", delays.append)
        with pytest.raises(ServiceClientError) as caught:
            client.healthz()
        assert len(attempts) == 4  # 1 try + 3 retries
        assert "4 attempt(s)" in str(caught.value)
        # Exponential backoff with deterministic jitter: delays grow and
        # stay within +-25% of base * 2**attempt (capped).
        assert len(delays) == 3
        for index, delay in enumerate(delays):
            base = min(0.05 * (2 ** index), 0.2)
            assert base * 0.75 <= delay <= base * 1.25
        assert delays == sorted(delays)

    def test_jitter_is_deterministic_per_request(self, monkeypatch):
        recorded = []
        for _ in range(2):
            client = self._client(retries=2)
            delays = []
            monkeypatch.setattr(
                client, "_open_once",
                lambda *a, **k: (_ for _ in ()).throw(
                    urllib.error.URLError(ConnectionResetError(104, "reset"))))
            monkeypatch.setattr(time, "sleep", delays.append)
            with pytest.raises(ServiceClientError):
                client.healthz()
            recorded.append(tuple(delays))
        assert recorded[0] == recorded[1]

    def test_recovery_mid_retry_returns_the_response(self, monkeypatch):
        client = self._client(retries=5)
        calls = {"n": 0}

        class _Response:
            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            @staticmethod
            def read():
                return b'{"status": "ok"}'

        def flaky(method, path, payload=None):
            calls["n"] += 1
            if calls["n"] < 3:
                raise urllib.error.URLError(
                    ConnectionRefusedError(111, "refused"))
            return _Response()

        monkeypatch.setattr(client, "_open_once", flaky)
        monkeypatch.setattr(time, "sleep", lambda _: None)
        assert client.healthz() == {"status": "ok"}
        assert calls["n"] == 3

    def test_non_connection_urlerror_is_not_retried(self, monkeypatch):
        client = self._client(retries=5)
        attempts = []

        def dns_failure(method, path, payload=None):
            attempts.append(path)
            raise urllib.error.URLError(OSError("no such host"))

        monkeypatch.setattr(client, "_open_once", dns_failure)
        with pytest.raises(urllib.error.URLError):
            client.healthz()
        assert len(attempts) == 1


# -- daemon crash / restart ---------------------------------------------------


def _free_state_daemon(state_dir, cache_dir, port=0):
    """Start `repro-dfs serve --state-dir` as a child; return (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_FAULTS", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.workcraft.cli", "serve",
         "--host", "127.0.0.1", "--port", str(port), "--jobs", "1",
         "--state-dir", state_dir, "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    line = process.stdout.readline()
    assert "serving verification on" in line, line
    return process, line.split()[-1].strip()


def _job_payload(job_id):
    return {"job_id": job_id, "factory": "pipeline",
            "kwargs": {"stages": 2}, "properties": ["safeness", "deadlock"],
            "max_states": 20000, "expect": "pass"}


class TestDaemonCrashRecovery:
    def test_killed_daemon_restarted_with_state_dir_answers_old_tickets(
            self, tmp_path):
        state = str(tmp_path / "state")
        cache = str(tmp_path / "cache")
        process, url = _free_state_daemon(state, cache)
        try:
            client = ServiceClient(url, connect_backoff=0.05)
            finished = client.submit(_job_payload("done-before-crash"))
            record = client.wait(finished["id"], timeout=120.0)
            assert record["result"]["status"] == "ok"
        finally:
            process.kill()  # SIGKILL: no shutdown hooks run
            process.wait(timeout=30)
        # The journal survived the kill and holds the finished verdict.
        events = [r["event"]
                  for r in read_journal(os.path.join(state, "journal"))]
        assert "submit" in events and "verdict" in events
        # Same state dir, new port: the old ticket id must still resolve.
        process, url = _free_state_daemon(state, cache)
        try:
            client = ServiceClient(url, connect_backoff=0.05)
            record = client.wait(finished["id"], timeout=60.0)
            assert record["status"] == "done"
            assert record["result"]["status"] == "ok"
            stats = client.stats()
            assert stats["restored"] >= 1
        finally:
            process.kill()
            process.wait(timeout=30)

    def test_inflight_ticket_is_rerun_after_restart(self, tmp_path):
        """A ticket the daemon died holding is re-enqueued on replay."""
        from repro.campaign.scheduler import CampaignScheduler
        from repro.utils.journal import JournalWriter

        state = str(tmp_path / "state")
        with JournalWriter(os.path.join(state, "journal")) as writer:
            writer.append({"event": "submit", "ticket": "inflight01",
                           "job": _job_payload("was-running"),
                           "tenant": None, "priority": 0, "timeout": None,
                           "time": 0.0})
            writer.append({"event": "start", "ticket": "inflight01"})
        scheduler = CampaignScheduler(parallelism=0, state_dir=state)
        try:
            ticket = scheduler.get("inflight01")
            assert ticket is not None
            result = ticket.wait(timeout=120.0)
            assert result.status == "ok"
            assert scheduler.stats()["requeued"] == 1
        finally:
            scheduler.shutdown()
