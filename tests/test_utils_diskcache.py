"""Tests for the shared JSON disk-cache layer (repro.utils.diskcache).

The cache's contract is crash/corruption tolerance: atomic writes (readers
never observe a half-written entry, even with concurrent writers racing on
one key), unreadable entries degrading to misses, and the higher-level
caches built on it (here :class:`~repro.petri.invariants.SemiflowCache`)
surviving truncated files by recomputing.
"""

import json
import os

import pytest

from repro.dfs.examples import token_ring
from repro.dfs.translation import to_petri_net
from repro.parallel.context import mp_context
from repro.petri.invariants import (
    SemiflowCache,
    compute_semiflows,
    compute_semiflows_cached,
)
from repro.utils.diskcache import JsonDiskCache, canonical_json, digest


def _hammer_writer(directory, key, payload, rounds):
    cache = JsonDiskCache(directory)
    for _ in range(rounds):
        cache.put(key, payload)


class TestAtomicity:
    def test_concurrent_writers_same_key_leave_a_complete_entry(self, tmp_path):
        """Two processes racing on one key: the file is always whole.

        Each writer stores a *different* self-consistent payload; whatever
        interleaving happens, the surviving entry must be exactly one of
        them (``os.replace`` is atomic), never a mixture or a torn write.
        """
        directory = str(tmp_path)
        key = "contended"
        payloads = [{"writer": index, "blob": "x" * 4096, "check": index * 7}
                    for index in range(2)]
        context = mp_context()
        writers = [
            context.Process(target=_hammer_writer,
                            args=(directory, key, payloads[index], 50))
            for index in range(2)
        ]
        cache = JsonDiskCache(directory)
        for process in writers:
            process.start()
        # Read concurrently while the writers race: every observed entry
        # must be one of the two complete payloads, never a torn mixture.
        while any(process.is_alive() for process in writers):
            entry = cache.get(key)
            if entry is not None:
                assert entry in payloads
        for process in writers:
            process.join(timeout=30)
            assert process.exitcode == 0
        final = cache.get(key)
        assert final in payloads
        # No temp files may survive the race.
        leftovers = [name for name in os.listdir(directory)
                     if name.endswith(".tmp")]
        assert leftovers == []
        assert len(cache) == 1

    def test_put_cleans_up_on_serialisation_failure(self, tmp_path):
        cache = JsonDiskCache(str(tmp_path))
        with pytest.raises(TypeError):
            cache.put("bad", {"handle": object()})
        assert [name for name in os.listdir(str(tmp_path))
                if name.endswith(".tmp")] == []
        assert cache.get("bad") is None


class TestCorruptionRecovery:
    @pytest.mark.parametrize("damage", [
        pytest.param(b"", id="empty-file"),
        pytest.param(b"{\"trunc", id="truncated-json"),
        pytest.param(b"\x00\xff garbage \x80", id="binary-garbage"),
        pytest.param(b"[1, 2", id="unclosed-array"),
    ])
    def test_corrupt_entry_counts_as_miss_and_is_overwritten(self, tmp_path,
                                                             damage):
        cache = JsonDiskCache(str(tmp_path))
        key = digest({"k": 1})
        cache.put(key, {"value": 41})
        with open(cache.path(key), "wb") as handle:
            handle.write(damage)
        assert cache.get(key) is None  # corrupt == miss, not an error
        cache.put(key, {"value": 42})  # ...and the caller's recompute heals it
        assert cache.get(key) == {"value": 42}

    def test_unreadable_entry_counts_as_miss(self, tmp_path):
        cache = JsonDiskCache(str(tmp_path))
        assert cache.get("never-written") is None

    def test_canonical_json_is_deterministic(self):
        left = canonical_json({"b": 2, "a": [1, {"d": 4, "c": 3}]})
        right = canonical_json({"a": [1, {"c": 3, "d": 4}], "b": 2})
        assert left == right
        assert digest({"b": 2, "a": 1}) == digest({"a": 1, "b": 2})


class TestSemiflowCacheRecovery:
    def test_survives_truncated_json_file(self, tmp_path):
        """A truncated entry must recompute (bit-identically) and heal."""
        net = to_petri_net(token_ring())
        cache = SemiflowCache(str(tmp_path))
        cold = compute_semiflows_cached(net, cache=cache)
        path = cache.path(cache.entry_key(net, 20000))
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content[:len(content) // 2])  # truncate mid-payload
        with pytest.raises(json.JSONDecodeError):
            json.load(open(path, "r", encoding="utf-8"))
        healed = compute_semiflows_cached(net, cache=cache)
        assert healed == cold == compute_semiflows(net)
        # The recomputation overwrote the damaged entry with a valid one.
        assert json.load(open(path, "r", encoding="utf-8"))["semiflows"]

    def test_survives_binary_garbage(self, tmp_path):
        net = to_petri_net(token_ring())
        cache = SemiflowCache(str(tmp_path))
        cold = compute_semiflows_cached(net, cache=cache)
        with open(cache.path(cache.entry_key(net, 20000)), "wb") as handle:
            handle.write(b"\x93NUMPY not json")
        assert compute_semiflows_cached(net, cache=cache) == cold
