"""Tests for the shared JSON disk-cache layer (repro.utils.diskcache).

The cache's contract is crash/corruption tolerance: atomic writes (readers
never observe a half-written entry, even with concurrent writers racing on
one key), unreadable entries degrading to misses, and the higher-level
caches built on it (here :class:`~repro.petri.invariants.SemiflowCache`)
surviving truncated files by recomputing.
"""

import json
import os
import threading

import pytest

from repro.dfs.examples import token_ring
from repro.dfs.translation import to_petri_net
from repro.parallel.context import mp_context
from repro.petri.invariants import (
    SemiflowCache,
    compute_semiflows,
    compute_semiflows_cached,
)
from repro.utils.diskcache import (
    Flight,
    JsonDiskCache,
    SingleFlight,
    canonical_json,
    digest,
    safe_segment,
)


def _hammer_writer(directory, key, payload, rounds):
    cache = JsonDiskCache(directory)
    for _ in range(rounds):
        cache.put(key, payload)


class TestAtomicity:
    def test_concurrent_writers_same_key_leave_a_complete_entry(self, tmp_path):
        """Two processes racing on one key: the file is always whole.

        Each writer stores a *different* self-consistent payload; whatever
        interleaving happens, the surviving entry must be exactly one of
        them (``os.replace`` is atomic), never a mixture or a torn write.
        """
        directory = str(tmp_path)
        key = "contended"
        payloads = [{"writer": index, "blob": "x" * 4096, "check": index * 7}
                    for index in range(2)]
        context = mp_context()
        writers = [
            context.Process(target=_hammer_writer,
                            args=(directory, key, payloads[index], 50))
            for index in range(2)
        ]
        cache = JsonDiskCache(directory)
        for process in writers:
            process.start()
        # Read concurrently while the writers race: every observed entry
        # must be one of the two complete payloads, never a torn mixture.
        while any(process.is_alive() for process in writers):
            entry = cache.get(key)
            if entry is not None:
                assert entry in payloads
        for process in writers:
            process.join(timeout=30)
            assert process.exitcode == 0
        final = cache.get(key)
        assert final in payloads
        # No temp files may survive the race.
        leftovers = [name for name in os.listdir(directory)
                     if name.endswith(".tmp")]
        assert leftovers == []
        assert len(cache) == 1

    def test_put_cleans_up_on_serialisation_failure(self, tmp_path):
        cache = JsonDiskCache(str(tmp_path))
        with pytest.raises(TypeError):
            cache.put("bad", {"handle": object()})
        assert [name for name in os.listdir(str(tmp_path))
                if name.endswith(".tmp")] == []
        assert cache.get("bad") is None


class TestCorruptionRecovery:
    @pytest.mark.parametrize("damage", [
        pytest.param(b"", id="empty-file"),
        pytest.param(b"{\"trunc", id="truncated-json"),
        pytest.param(b"\x00\xff garbage \x80", id="binary-garbage"),
        pytest.param(b"[1, 2", id="unclosed-array"),
    ])
    def test_corrupt_entry_counts_as_miss_and_is_overwritten(self, tmp_path,
                                                             damage):
        cache = JsonDiskCache(str(tmp_path))
        key = digest({"k": 1})
        cache.put(key, {"value": 41})
        with open(cache.path(key), "wb") as handle:
            handle.write(damage)
        assert cache.get(key) is None  # corrupt == miss, not an error
        cache.put(key, {"value": 42})  # ...and the caller's recompute heals it
        assert cache.get(key) == {"value": 42}

    def test_unreadable_entry_counts_as_miss(self, tmp_path):
        cache = JsonDiskCache(str(tmp_path))
        assert cache.get("never-written") is None

    def test_canonical_json_is_deterministic(self):
        left = canonical_json({"b": 2, "a": [1, {"d": 4, "c": 3}]})
        right = canonical_json({"a": [1, {"c": 3, "d": 4}], "b": 2})
        assert left == right
        assert digest({"b": 2, "a": 1}) == digest({"a": 1, "b": 2})


class TestSemiflowCacheRecovery:
    def test_survives_truncated_json_file(self, tmp_path):
        """A truncated entry must recompute (bit-identically) and heal."""
        net = to_petri_net(token_ring())
        cache = SemiflowCache(str(tmp_path))
        cold = compute_semiflows_cached(net, cache=cache)
        path = cache.path(cache.entry_key(net, 20000))
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content[:len(content) // 2])  # truncate mid-payload
        with pytest.raises(json.JSONDecodeError):
            json.load(open(path, "r", encoding="utf-8"))
        healed = compute_semiflows_cached(net, cache=cache)
        assert healed == cold == compute_semiflows(net)
        # The recomputation overwrote the damaged entry with a valid one.
        assert json.load(open(path, "r", encoding="utf-8"))["semiflows"]

    def test_survives_binary_garbage(self, tmp_path):
        net = to_petri_net(token_ring())
        cache = SemiflowCache(str(tmp_path))
        cold = compute_semiflows_cached(net, cache=cache)
        with open(cache.path(cache.entry_key(net, 20000)), "wb") as handle:
            handle.write(b"\x93NUMPY not json")
        assert compute_semiflows_cached(net, cache=cache) == cold


class TestNamespaces:
    def test_clean_names_pass_through(self):
        assert safe_segment("tenant-1") == "tenant-1"
        assert safe_segment("a.b_c") == "a.b_c"

    def test_hostile_names_are_sanitised_without_collisions(self):
        hostile = ["../escape", "a/b", "a\\b", "", ".", "..", ".hidden",
                   "sp ace", "uniçode"]
        segments = [safe_segment(name) for name in hostile]
        assert len(set(segments)) == len(segments)  # distinct names stay distinct
        for segment in segments:
            assert os.sep not in segment and "/" not in segment
            assert not segment.startswith(".")
        # Names that sanitise to the same characters must not collide.
        assert safe_segment("a/b") != safe_segment("a-b") != safe_segment("a\\b")

    def test_sanitisation_is_stable(self):
        assert safe_segment("../x") == safe_segment("../x")

    def test_namespaces_are_isolated_sub_caches(self, tmp_path):
        cache = JsonDiskCache(str(tmp_path))
        alice = cache.namespace("tenants", "alice")
        bob = cache.namespace("tenants", "bob")
        alice.put("k", {"who": "alice"})
        assert bob.get("k") is None
        assert cache.get("k") is None
        assert alice.get("k") == {"who": "alice"}
        assert alice.directory.startswith(cache.directory)
        # Re-deriving the namespace reaches the same storage.
        assert cache.namespace("tenants", "alice").get("k") == {"who": "alice"}

    def test_namespace_keeps_the_cache_subclass(self, tmp_path):
        class Sub(JsonDiskCache):
            pass

        assert isinstance(Sub(str(tmp_path)).namespace("x"), Sub)


class TestSingleFlight:
    def test_first_caller_leads_and_duplicates_attach(self):
        flights = SingleFlight()
        flight, leader = flights.acquire("key")
        assert leader
        again, follower_leads = flights.acquire("key")
        assert again is flight and not follower_leads
        assert len(flights) == 1
        seen = []
        again.subscribe(lambda fl: seen.append(fl.result))
        flights.release("key")
        flight.resolve(41)
        assert seen == [41]
        # After release+resolve a new acquisition starts a fresh flight.
        fresh, leads = flights.acquire("key")
        assert leads and fresh is not flight
        assert flights.release("key") is fresh

    def test_subscribe_after_resolution_fires_immediately(self):
        flight = Flight("k")
        flight.resolve("done")
        seen = []
        flight.subscribe(lambda fl: seen.append(fl.result))
        assert seen == ["done"]

    def test_wait_returns_result_and_raises_failures(self):
        flight = Flight("k")
        threading.Timer(0.01, flight.resolve, args=("value",)).start()
        assert flight.wait(timeout=5.0) == "value"
        failed = Flight("k2")
        failed.fail(RuntimeError("leader died"))
        with pytest.raises(RuntimeError, match="leader died"):
            failed.wait(timeout=1.0)

    def test_wait_times_out_on_an_unresolved_flight(self):
        with pytest.raises(TimeoutError):
            Flight("k").wait(timeout=0.01)

    def test_double_resolution_is_a_loud_error(self):
        flight = Flight("k")
        flight.resolve(1)
        with pytest.raises(RuntimeError):
            flight.resolve(2)

    def test_concurrent_acquires_elect_exactly_one_leader(self):
        flights = SingleFlight()
        outcomes = []
        acquired = threading.Barrier(8)

        def contend():
            flight, leader = flights.acquire("hot")
            # Hold every contender on the same flight: nobody resolves (and
            # thus nobody can re-probe a fresh flight) until all acquired.
            acquired.wait(timeout=10)
            if leader:
                flights.release("hot")
                flight.resolve("computed")
                outcomes.append(("led", "computed"))
            else:
                outcomes.append(("followed", flight.wait(timeout=5.0)))

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(outcomes) == 8
        assert sum(1 for role, _ in outcomes if role == "led") == 1
        assert all(value == "computed" for _, value in outcomes)
