"""Tests for repro.petri.properties."""

from repro.petri.net import PetriNet
from repro.petri.properties import (
    check_boundedness,
    check_deadlock,
    check_mutual_exclusion,
    check_persistence,
)
from repro.petri.reachability import explore


def choice_net():
    """One token, two competing transitions (a structural conflict / choice)."""
    net = PetriNet("choice")
    net.add_place("p", tokens=1)
    net.add_place("a")
    net.add_place("b")
    net.add_transition("ta")
    net.add_transition("tb")
    net.add_arc("p", "ta")
    net.add_arc("p", "tb")
    net.add_arc("ta", "a")
    net.add_arc("tb", "b")
    return net


def hazard_net():
    """A transition disabled through a read arc by another one (a hazard)."""
    net = PetriNet("hazard")
    net.add_place("g", tokens=1)
    net.add_place("g_done")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("kill")      # consumes g
    net.add_transition("observe")   # consumes p, reads g
    net.add_arc("g", "kill")
    net.add_arc("kill", "g_done")
    net.add_arc("p", "observe")
    net.add_arc("observe", "q")
    net.add_read_arc("g", "observe")
    return net


def unbounded_like_net():
    """A net where a place accumulates two tokens (not 1-safe)."""
    net = PetriNet("unsafe")
    net.add_place("src", tokens=2)
    net.add_place("sink")
    net.add_transition("move")
    net.add_arc("src", "move")
    net.add_arc("move", "sink")
    return net


def ring_net(places=6, tokens=1):
    net = PetriNet("ring")
    for index in range(places):
        net.add_place("p{}".format(index), tokens=1 if index < tokens else 0)
        net.add_transition("t{}".format(index))
    for index in range(places):
        net.add_arc("p{}".format(index), "t{}".format(index))
        net.add_arc("t{}".format(index), "p{}".format((index + 1) % places))
    return net


class TestTruncatedGraphChecks:
    """Truncated graphs must never blame a frontier state."""

    def test_no_phantom_deadlock_on_truncated_ring(self):
        report = check_deadlock(explore(ring_net(), max_states=2))
        assert report.holds is None  # inconclusive, never "violated"

    def test_real_deadlock_survives_truncation(self):
        # One branch of the choice fits under the bound and ends in a true
        # deadlock; the other is cut off.  The found deadlock is definitive.
        graph = explore(choice_net(), max_states=2)
        assert graph.truncated
        report = check_deadlock(graph)
        assert report.holds is False

    def test_persistence_skips_frontier_states(self):
        # The interleaved two-token ring is persistent; a truncated scan
        # that inspected the partial successors of frontier states would
        # report spurious disablings.
        graph = explore(ring_net(places=4, tokens=2), max_states=3)
        assert graph.truncated and graph.frontier
        report = check_persistence(graph)
        assert report.holds is None

    def test_boundedness_inconclusive_when_truncated(self):
        report = check_boundedness(explore(ring_net(), max_states=2), bound=1)
        assert report.holds is None


class TestDeadlock:
    def test_choice_net_deadlocks(self):
        report = check_deadlock(explore(choice_net()))
        assert report.holds is False
        assert report.witnesses
        assert "trace" in report.witnesses[0]

    def test_cycle_free_of_deadlock(self):
        net = PetriNet("loop")
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        report = check_deadlock(explore(net))
        assert report.holds is True


class TestPersistence:
    def test_structural_conflict_is_not_a_hazard(self):
        report = check_persistence(explore(choice_net()))
        assert report.holds is True

    def test_read_arc_disabling_is_a_hazard(self):
        report = check_persistence(explore(hazard_net()))
        assert report.holds is False
        witness = report.witnesses[0]
        assert witness["fired"] == "kill"
        assert witness["disabled"] == "observe"

    def test_conflicts_can_be_counted_when_not_allowed(self):
        report = check_persistence(explore(choice_net()), allow_conflicts=False)
        assert report.holds is False


class TestBoundedness:
    def test_safe_net_passes(self):
        report = check_boundedness(explore(choice_net()), bound=1)
        assert report.holds is True

    def test_two_token_place_fails_safeness(self):
        report = check_boundedness(explore(unbounded_like_net()), bound=1)
        assert report.holds is False

    def test_higher_bound_passes(self):
        report = check_boundedness(explore(unbounded_like_net()), bound=2)
        assert report.holds is True


class TestMutualExclusion:
    def test_exclusive_places(self):
        report = check_mutual_exclusion(explore(choice_net()), "a", "b")
        assert report.holds is True

    def test_non_exclusive_places(self):
        net = PetriNet("both")
        net.add_place("p", tokens=1)
        net.add_place("a")
        net.add_place("b")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "a")
        net.add_arc("t", "b")
        report = check_mutual_exclusion(explore(net), "a", "b")
        assert report.holds is False
