"""Tests for the DFS enabling rules (repro.dfs.semantics) on small models.

These check the paper's equations (1)-(5) case by case: logic
evaluation/reset, static register marking, the push/pop dynamic behaviour and
the control-register choice.
"""

import pytest

from repro.dfs.model import DataflowStructure
from repro.dfs.semantics import EventAction, Literal, events_for_node, model_events
from repro.dfs.simulation import DfsSimulator


class TestEventGeneration:
    def test_logic_node_has_two_events(self, simple_chain):
        events = events_for_node(simple_chain, "f")
        assert {event.action for event in events} == {EventAction.EVALUATE, EventAction.RESET}

    def test_plain_register_has_two_events(self, simple_chain):
        events = events_for_node(simple_chain, "b")
        assert {event.action for event in events} == {EventAction.MARK, EventAction.UNMARK}

    def test_event_names_follow_paper_convention(self, simple_chain):
        names = set(model_events(simple_chain))
        assert {"C_f+", "C_f-", "M_a+", "M_a-", "M_b+", "M_b-"} == names

    def test_uncontrolled_push_acts_static(self):
        dfs = DataflowStructure()
        dfs.add_register("a", marked=True)
        dfs.add_push("p")
        dfs.connect("a", "p")
        actions = {event.action for event in events_for_node(dfs, "p")}
        assert EventAction.MARK_FALSE not in actions
        assert EventAction.MARK_TRUE in actions

    def test_controlled_push_has_false_events(self):
        dfs = DataflowStructure()
        dfs.add_register("a", marked=True)
        dfs.add_control("c", marked=True, value=False)
        dfs.add_push("p")
        dfs.connect("a", "p")
        dfs.connect("c", "p")
        actions = {event.action for event in events_for_node(dfs, "p")}
        assert EventAction.MARK_FALSE in actions
        assert EventAction.UNMARK_FALSE in actions

    def test_control_register_always_has_both_choices(self):
        dfs = DataflowStructure()
        dfs.add_register("a", marked=True)
        dfs.add_logic("cond")
        dfs.add_control("ctrl")
        dfs.connect_chain("a", "cond", "ctrl")
        actions = {event.action for event in events_for_node(dfs, "ctrl")}
        assert EventAction.MARK_TRUE in actions and EventAction.MARK_FALSE in actions

    def test_invalid_literal_kind_rejected(self):
        with pytest.raises(ValueError):
            Literal("X", "node", True)


class TestLogicGuards:
    def test_logic_evaluation_requires_preset_register_marked(self, simple_chain):
        events = model_events(simple_chain)
        guard = events["C_f+"].guard
        assert Literal("M", "a", True) in guard

    def test_logic_reset_requires_preset_register_unmarked(self, simple_chain):
        guard = model_events(simple_chain)["C_f-"].guard
        assert Literal("M", "a", False) in guard

    def test_logic_after_push_requires_true_token(self):
        dfs = DataflowStructure()
        dfs.add_control("c", marked=True)
        dfs.add_push("p")
        dfs.add_logic("f")
        dfs.add_register("r", marked=False)
        dfs.add_register("src", marked=True)
        dfs.connect("src", "p")
        dfs.connect("c", "p")
        dfs.connect("p", "f")
        dfs.connect("f", "r")
        guard = model_events(dfs)["C_f+"].guard
        assert Literal("Mt", "p", True) in guard


class TestRegisterGuards:
    def test_register_marking_requires_r_postset_empty(self, simple_chain):
        guard = model_events(simple_chain)["M_a+"].guard
        assert Literal("M", "b", False) in guard

    def test_register_unmarking_requires_r_postset_marked(self, simple_chain):
        guard = model_events(simple_chain)["M_a-"].guard
        assert Literal("M", "b", True) in guard

    def test_data_register_waits_for_real_token_in_downstream_pop(self):
        dfs = DataflowStructure()
        dfs.add_register("r", marked=True)
        dfs.add_control("c", marked=True)
        dfs.add_pop("o")
        dfs.connect("r", "o")
        dfs.connect("c", "o")
        guard = model_events(dfs)["M_r-"].guard
        assert Literal("Mt", "o", True) in guard

    def test_control_register_accepts_any_token_in_controlled_pop(self):
        dfs = DataflowStructure()
        dfs.add_register("r", marked=True)
        dfs.add_control("c", marked=True)
        dfs.add_pop("o")
        dfs.connect("r", "o")
        dfs.connect("c", "o")
        for event_name in ("Mt_c-", "Mf_c-"):
            guard = model_events(dfs)[event_name].guard
            assert Literal("Mt", "o", True) not in guard
            assert Literal("M", "o", True) in guard


class TestMotivatingExampleBehaviour:
    """Directed token-game scenarios on the Fig. 1b model."""

    def test_true_path_goes_through_comp(self, conditional_dfs):
        simulator = DfsSimulator(conditional_dfs, choice_policy=lambda node, idx: True)
        simulator.fire_sequence([
            "M_in+", "C_cond+", "Mt_ctrl+", "Mt_filt+", "C_comp1+", "M_r1+",
        ])
        assert simulator.state.is_marked("r1")
        # The pop takes the token as a static register would.
        assert "Mt_out+" in simulator.enabled_events()

    def test_false_path_bypasses_comp(self, conditional_dfs):
        simulator = DfsSimulator(conditional_dfs, choice_policy=lambda node, idx: False)
        simulator.fire_sequence(["M_in+", "C_cond+", "Mf_ctrl+", "Mf_filt+"])
        # The expensive pipeline never sees the token...
        assert "C_comp1+" not in simulator.enabled_events()
        # ...but the pop produces an empty token at the output.
        assert "Mf_out+" in simulator.enabled_events()
        simulator.fire("Mf_out+")
        assert simulator.state.token_value("out") is False

    def test_false_token_is_destroyed_by_push(self, conditional_dfs):
        simulator = DfsSimulator(conditional_dfs, choice_policy=lambda node, idx: False)
        simulator.fire_sequence([
            "M_in+", "C_cond+", "Mf_ctrl+", "Mf_filt+", "Mf_out+", "M_in-",
            "C_cond-", "Mf_ctrl-",
        ])
        # The push can now destroy the token without the comp register ever marking.
        assert "Mf_filt-" in simulator.enabled_events()
        simulator.fire("Mf_filt-")
        assert not simulator.state.is_marked("filt")
        assert not simulator.state.is_marked("r1")

    def test_full_false_cycle_returns_to_idle(self, conditional_dfs):
        simulator = DfsSimulator(conditional_dfs, choice_policy=lambda node, idx: False)
        sequence = [
            "M_in+", "C_cond+", "Mf_ctrl+", "Mf_filt+", "Mf_out+", "M_in-",
            "C_cond-", "Mf_ctrl-", "Mf_filt-", "Mf_out-",
        ]
        simulator.fire_sequence(sequence)
        assert simulator.state.marked_registers() == []
        # A new item can now be processed.
        assert "M_in+" in simulator.enabled_events()
