"""Tests for repro.petri.marking."""

import pytest

from repro.petri.marking import Marking


class TestConstruction:
    def test_zero_counts_are_dropped(self):
        marking = Marking({"a": 0, "b": 1})
        assert "a" not in marking
        assert marking["a"] == 0
        assert marking["b"] == 1

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Marking({"a": -1})

    def test_empty_marking(self):
        marking = Marking()
        assert len(marking) == 0
        assert marking.total() == 0


class TestEqualityAndHashing:
    def test_equality_ignores_zero_places(self):
        assert Marking({"a": 1, "b": 0}) == Marking({"a": 1})

    def test_equality_with_dict(self):
        assert Marking({"a": 2}) == {"a": 2}

    def test_hash_consistency(self):
        assert hash(Marking({"a": 1, "b": 2})) == hash(Marking({"b": 2, "a": 1}))

    def test_usable_as_dict_key(self):
        store = {Marking({"a": 1}): "state1"}
        assert store[Marking({"a": 1})] == "state1"


class TestUpdates:
    def test_add_returns_new_marking(self):
        original = Marking({"a": 1})
        updated = original.add("a")
        assert updated["a"] == 2
        assert original["a"] == 1

    def test_remove(self):
        assert Marking({"a": 2}).remove("a")["a"] == 1

    def test_remove_too_many_raises(self):
        with pytest.raises(ValueError):
            Marking({"a": 1}).remove("a", 2)

    def test_fire_consumes_and_produces(self):
        marking = Marking({"p": 1})
        successor = marking.fire({"p": 1}, {"q": 1})
        assert successor == Marking({"q": 1})

    def test_fire_insufficient_tokens_raises(self):
        with pytest.raises(ValueError):
            Marking({"p": 0}).fire({"p": 1}, {})


class TestQueries:
    def test_covers(self):
        assert Marking({"a": 2, "b": 1}).covers({"a": 1})
        assert not Marking({"a": 1}).covers({"a": 2})

    def test_marked_places(self):
        assert Marking({"a": 1, "b": 3}).marked_places() == {"a", "b"}

    def test_total(self):
        assert Marking({"a": 1, "b": 3}).total() == 4

    def test_restricted_to(self):
        marking = Marking({"a": 1, "b": 2, "c": 3})
        assert marking.restricted_to(["a", "c"]) == Marking({"a": 1, "c": 3})

    def test_as_dict(self):
        assert Marking({"a": 1, "b": 0}).as_dict() == {"a": 1}
