"""Tests for the vectorised walk swarm (repro.verification.checkers.walk_batch).

The contract mirrors ``tests/test_petri_batch.py``: the swarm backend is a
*throughput* change, never a *semantics* change.  Its RNG draws and
guidance ranks are pinned bit-for-bit against the scalar helpers of
``walk_core``, its conclusive verdicts are differentially checked against
the scalar walker and the exhaustive engine on the whole example family,
and the ``REPRO_NO_NUMPY`` fallback path is exercised without NumPy at all
(the fallback classes below carry no numpy skip, so the no-NumPy CI job
runs them).
"""

import pytest

from repro.campaign.jobs import VerificationJob, build_pipeline_model
from repro.campaign.cache import options_digest
from repro.dfs.examples import conditional_comp_dfs, linear_pipeline, token_ring
from repro.dfs.model import DataflowStructure
from repro.dfs.translation import to_petri_net
from repro.exceptions import ConfigurationError
from repro.petri.batch import numpy_available
from repro.petri.compiled import CompiledNet
from repro.petri.net import PetriNet
from repro.reach.cubes import to_cubes
from repro.reach.parser import parse
from repro.verification.checkers import (
    CheckerContext,
    DeadlockQuery,
    SafenessQuery,
    create_checker,
)
from repro.verification.checkers.walk import resolve_walk_backend
from repro.verification.checkers.walk_core import (
    NearMissPool,
    cube_mask_table,
    cube_rank,
    mix64,
    replay_witness,
    walk_draw,
)
from repro.verification.verifier import Verifier

DIFFERENTIAL_PROPERTIES = ("safeness", "deadlock", "mismatch", "exclusion")


def deadlocking_model():
    """Two registers in mutual wait (mirrors tests/test_checkers.py)."""
    dfs = DataflowStructure("deadlock")
    dfs.add_register("a")
    dfs.add_register("b")
    dfs.add_logic("f")
    dfs.add_logic("g")
    dfs.connect_chain("a", "f", "b")
    dfs.connect_chain("b", "g", "a")
    return dfs


def mismatch_model():
    """A push guarded by opposite-valued controls (mirrors test_checkers)."""
    dfs = DataflowStructure("mismatch")
    dfs.add_register("src", marked=True)
    dfs.add_control("ct", marked=True, value=True)
    dfs.add_control("cf", marked=True, value=False)
    dfs.add_push("p")
    dfs.add_register("dst")
    dfs.connect("src", "p")
    dfs.connect("ct", "p")
    dfs.connect("cf", "p")
    dfs.connect("p", "dst")
    return dfs


#: The example-DFS family of tests/test_checkers.py: clean and buggy models
#: both, so swarm/scalar/exhaustive agreement is tested in both directions.
MODEL_FAMILY = {
    "conditional": lambda: conditional_comp_dfs(comp_stages=1),
    "conditional3": lambda: conditional_comp_dfs(comp_stages=3),
    "linear": lambda: linear_pipeline(stages=3),
    "ring": lambda: token_ring(registers=4, tokens=1),
    "pipeline2": lambda: build_pipeline_model(2, static_prefix=1),
    "pipeline3-hole": lambda: build_pipeline_model(3, static_prefix=1,
                                                   holes=[2]),
    "deadlock": deadlocking_model,
    "mismatch": mismatch_model,
}

#: Skip marker of the numpy-only classes (the fallback classes run always).
needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="batch walk backend disabled (no NumPy "
    "or REPRO_NO_NUMPY set)")


def overflow_net():
    """A non-1-safe net: firing ``t`` puts a second token into ``p``."""
    net = PetriNet("overflow")
    net.add_place("p", tokens=1)
    net.add_place("q", tokens=1)
    net.add_transition("t")
    net.add_arc("q", "t")
    net.add_arc("t", "p")
    net.add_arc("t", "q")
    return net


def walk_checker(net, **options):
    return create_checker("walk", CheckerContext(net), options)


@needs_numpy
class TestCounterRng:
    """The vectorised RNG must be bit-identical to the scalar stream."""

    def test_draw_rows_matches_walk_draw(self):
        import numpy as np
        from repro.verification.checkers.walk_batch import draw_rows

        seeds = (0, 1, 0xACE1, (1 << 64) - 1)
        walks = np.array([0, 1, 2, 7, 1023, 8191, (1 << 40) + 3],
                         dtype=np.int64)
        steps = np.array([0, 1, 2, 255, 256, 65536, 1], dtype=np.int64)
        for seed in seeds:
            vector = draw_rows(np, seed, walks, steps)
            scalar = [walk_draw(seed, int(w), int(s))
                      for w, s in zip(walks, steps)]
            assert vector.tolist() == scalar

    def test_streams_are_width_independent(self):
        # The draw of (seed, walk, step) never depends on any other walk:
        # the same triple gives the same word however many rows surround it.
        assert walk_draw(7, 5, 3) == walk_draw(7, 5, 3)
        assert walk_draw(7, 5, 3) != walk_draw(7, 6, 3)
        assert walk_draw(7, 5, 3) != walk_draw(8, 5, 3)

    def test_mix64_avalanche(self):
        words = {mix64(value) for value in range(1024)}
        assert len(words) == 1024  # no collisions on a dense counter range
        assert all(word <= (1 << 64) - 1 for word in words)


@needs_numpy
class TestSharedScoring:
    """Both backends rank states through the same arithmetic."""

    def test_cube_rank_rows_matches_scalar(self):
        import numpy as np
        from repro.verification.checkers.walk_batch import (
            cube_rank_rows,
            cube_word_table,
        )

        net = to_petri_net(build_pipeline_model(3, static_prefix=1))
        compiled = CompiledNet.compile(net)
        places = compiled.place_names
        expression = parse('$"{}" & !$"{}" | $"{}"'.format(
            places[0], places[3], places[7]))
        masks = cube_mask_table(compiled.mask_of,
                                to_cubes(expression, max_cubes=16))
        from repro.petri.batch import WordTables
        tables = WordTables(compiled)
        # A spread of states: walk the reachable set for realistic rows.
        states = [compiled.encode(net.initial_marking())]
        for index in range(len(compiled.transition_names)):
            if compiled.is_enabled(index, states[-1]):
                states.append(compiled.fire(index, states[-1]))
        states.extend([0, (1 << len(places)) - 1])
        rows = tables.encode_rows(states)
        vector = cube_rank_rows(np, cube_word_table(np, masks, tables.words),
                                rows)
        scalar = [cube_rank(masks, state) for state in states]
        assert vector.tolist() == scalar  # exact float64 equality

    def test_fewest_enabled_matches_enabled_matrix_counts(self):
        import numpy as np
        from repro.petri.batch import WordTables
        from repro.verification.checkers.walk_core import fewest_enabled_rank

        net = to_petri_net(MODEL_FAMILY["conditional"]())
        compiled = CompiledNet.compile(net)
        tables = WordTables(compiled)
        state = compiled.encode(net.initial_marking())
        counts = tables.enabled_matrix(tables.encode_rows([state]))
        assert int(counts.sum()) == fewest_enabled_rank(compiled, state)


@needs_numpy
class TestSwarmDifferential:
    """Swarm verdicts must never contradict scalar or exhaustive."""

    @pytest.fixture(scope="class")
    def exhaustive_verdicts(self):
        verdicts = {}
        for model_name, factory in MODEL_FAMILY.items():
            summary = Verifier(factory(),
                               checker="exhaustive").verify_properties(
                DIFFERENTIAL_PROPERTIES)
            verdicts[model_name] = {
                result.property_name: result.holds
                for result in summary.results}
        return verdicts

    @pytest.mark.parametrize("swarm", [4, 1024])
    @pytest.mark.parametrize("model_name", sorted(MODEL_FAMILY))
    def test_swarm_agrees_with_exhaustive(self, model_name, swarm,
                                          exhaustive_verdicts):
        summary = Verifier(
            MODEL_FAMILY[model_name](), checker="walk",
            checker_options={"walk": {"backend": "batch", "swarm": swarm}},
        ).verify_properties(DIFFERENTIAL_PROPERTIES)
        reference = exhaustive_verdicts[model_name]
        for result in summary.results:
            if result.holds is None:
                continue  # inconclusive is always acceptable
            assert result.holds is reference[result.property_name], (
                "swarm({}) contradicts exhaustive on {}/{}: {}".format(
                    swarm, model_name, result.property_name, result.details))

    @pytest.mark.parametrize("model_name", sorted(MODEL_FAMILY))
    def test_swarm_and_scalar_verdicts_are_consistent(self, model_name,
                                                      exhaustive_verdicts):
        """Both backends' conclusive answers point at the same truth."""
        reference = exhaustive_verdicts[model_name]
        for backend in ("scalar", "batch"):
            summary = Verifier(
                MODEL_FAMILY[model_name](), checker="walk",
                checker_options={"walk": {"backend": backend}},
            ).verify_properties(DIFFERENTIAL_PROPERTIES)
            for result in summary.results:
                if result.holds is not None:
                    assert result.holds is reference[result.property_name]

    def test_swarm_witness_traces_replay_on_the_net(self):
        dfs = build_pipeline_model(3, static_prefix=1, holes=[2])
        result = Verifier(
            dfs, checker="walk",
            checker_options={"walk": {"backend": "batch"}},
        ).verify_deadlock_freedom()
        assert result.holds is False
        net = to_petri_net(dfs)
        marking = net.initial_marking()
        for transition in result.witnesses[0]["trace"]:
            marking = net.fire(transition, marking)
        assert marking == result.witnesses[0]["marking"]
        assert not net.enabled_transitions(marking)


@needs_numpy
class TestBeyondTheTruncationHorizon:
    def test_swarm_finds_hole_deadlock_past_a_1000_state_truncation(self):
        dfs = build_pipeline_model(4, static_prefix=1, holes=[2])
        exhaustive = Verifier(dfs, max_states=1000, checker="exhaustive")
        assert exhaustive.verify_deadlock_freedom().holds is None

        swarm = Verifier(dfs, max_states=1000, checker="walk",
                         checker_options={"walk": {"backend": "batch"}})
        result = swarm.verify_deadlock_freedom()
        assert result.holds is False
        assert result.method == "walk"
        assert result.witnesses[0]["trace"]


@needs_numpy
class TestSwarmEdgeCases:
    def test_multi_word_net(self):
        """The swarm spans word boundaries exactly like the BFS engine."""
        from repro.petri.batch import WordTables

        dfs = build_pipeline_model(3, static_prefix=1, holes=[2])
        net = to_petri_net(dfs)
        assert WordTables(CompiledNet.compile(net)).words >= 2
        checker = walk_checker(net, backend="batch")
        outcome = checker.check(DeadlockQuery())
        assert outcome.holds is False
        assert checker.last_hunt_stats["backend"] == "batch"

    def test_degenerate_all_dead_swarm(self):
        """An initially deadlocked net: every row witnesses the same state."""
        net = PetriNet("stuck")
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("q", "t")  # never enabled: q is empty
        net.add_arc("t", "p")
        checker = walk_checker(net, backend="batch", walks=64, swarm=16)
        outcome = checker.check(DeadlockQuery())
        assert outcome.holds is False
        # All 64 walks retire on the same initial deadlock; the witness
        # list dedupes to the one distinct state and the trace is empty.
        assert len(outcome.witnesses) == 1
        assert outcome.witnesses[0]["trace"] == []
        assert checker.last_hunt_stats["walks"] == 64

    def test_swarm_overflow_is_conclusive_only_for_safeness(self):
        net = overflow_net()
        checker = walk_checker(net, backend="batch")
        assert checker.check(DeadlockQuery()).holds is None
        outcome = checker.check(SafenessQuery(bound=1))
        assert outcome.holds is False
        assert outcome.witnesses[0]["place"] == "p"
        assert outcome.witnesses[0]["transition"] == "t"
        assert "overflows" in outcome.details

    def test_swarm_is_deterministic_per_seed_and_width(self):
        dfs = build_pipeline_model(3, static_prefix=1, holes=[2])
        net = to_petri_net(dfs)
        traces = []
        for _ in range(2):
            checker = walk_checker(net, backend="batch", seed=99, swarm=32)
            traces.append(checker.check(DeadlockQuery()).witnesses[0]["trace"])
        assert traces[0] == traces[1]

    def test_scalar_rewrite_is_deterministic_per_seed(self):
        """Same seed, same verdict, same witness trace on the scalar path."""
        dfs = build_pipeline_model(3, static_prefix=1, holes=[2])
        net = to_petri_net(dfs)
        traces = []
        for _ in range(2):
            checker = walk_checker(net, backend="scalar", seed=0xACE1)
            traces.append(checker.check(DeadlockQuery()).witnesses[0]["trace"])
        assert traces[0] == traces[1]


class TestNearMissPool:
    """The shared restart pool keeps scalar and swarm semantics aligned."""

    def test_dedupes_by_state(self):
        pool = NearMissPool(4)
        pool.remember(1.0, 10, ("a",))
        pool.remember(0.5, 10, ("b",))  # same state: kept out
        assert len(pool) == 1
        assert pool.pick(0) == (1.0, 10, ("a",))

    def test_evicts_first_worst_only_for_strictly_better(self):
        pool = NearMissPool(2)
        pool.remember(3.0, 1, ())
        pool.remember(3.0, 2, ())
        pool.remember(3.0, 3, ())  # tie: incumbents stay
        assert {entry[1] for entry in (pool.pick(0), pool.pick(1))} == {1, 2}
        pool.remember(1.0, 4, ())  # strictly better: first worst (state 1) goes
        assert {entry[1] for entry in (pool.pick(0), pool.pick(1))} == {2, 4}

    def test_zero_capacity_disables_restarts(self):
        pool = NearMissPool(0)
        pool.remember(0.0, 1, ())
        assert len(pool) == 0


class TestWitnessReplay:
    """Swarm traces are only trusted after replaying on the net."""

    def test_tampered_deadlock_trace_is_rejected(self):
        net = to_petri_net(build_pipeline_model(3, static_prefix=1,
                                                holes=[2]))
        checker = walk_checker(net, backend="scalar")
        trace = checker.check(DeadlockQuery()).witnesses[0]["trace"]
        assert replay_witness(net, "deadlock", trace) is not None
        assert replay_witness(net, "deadlock", trace[:-1]) is None
        assert replay_witness(net, "deadlock", ["nonsense"] + trace) is None

    def test_overflow_replay_checks_the_extra_token(self):
        net = overflow_net()
        witness = replay_witness(net, "overflow", [], transition="t")
        assert witness is not None and witness["transition"] == "t"

        safe = PetriNet("safe")
        safe.add_place("p", tokens=1)
        safe.add_place("q")
        safe.add_transition("t")
        safe.add_arc("p", "t")
        safe.add_arc("t", "q")
        # A 1-safe firing is no overflow witness...
        assert replay_witness(safe, "overflow", [], transition="t") is None
        # ...and neither is a transition the trace already disabled.
        assert replay_witness(safe, "overflow", ["t"], transition="t") is None


class TestScalarFallback:
    """No NumPy (or REPRO_NO_NUMPY): auto cleanly degrades to scalar.

    Deliberately *not* numpy-skipped: the no-NumPy CI job runs these.
    """

    def test_auto_resolves_per_numpy_availability(self):
        expected = "batch" if numpy_available() else "scalar"
        assert resolve_walk_backend("auto") == expected
        assert resolve_walk_backend("scalar") == "scalar"

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_walk_backend("gpu")
        net = to_petri_net(MODEL_FAMILY["conditional"]())
        with pytest.raises(ConfigurationError):
            walk_checker(net, backend="gpu")

    def test_no_numpy_auto_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert resolve_walk_backend("auto") == "scalar"
        assert resolve_walk_backend("batch") == "batch-unavailable"
        net = to_petri_net(build_pipeline_model(3, static_prefix=1,
                                                holes=[2]))
        checker = walk_checker(net, backend="auto")
        outcome = checker.check(DeadlockQuery())
        assert outcome.holds is False
        assert checker.last_hunt_stats["backend"] == "scalar"

    def test_forced_batch_without_numpy_is_inconclusive(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        net = to_petri_net(MODEL_FAMILY["conditional"]())
        outcome = walk_checker(net, backend="batch").check(DeadlockQuery())
        assert outcome.holds is None
        assert "NumPy" in outcome.details

    def test_walk_cli_flags_reach_the_checker(self, capsys):
        from repro.workcraft.cli import main as cli_main

        # A pure falsifier on a clean model answers inconclusive (exit 1);
        # the point here is that --walks reached the checker's budget.
        exit_code = cli_main(["verify", "--example", "conditional",
                              "--checker", "walk", "--walks", "2",
                              "--walk-backend", "auto",
                              "--no-persistence"])
        assert exit_code == 1
        assert "2 walk(s)" in capsys.readouterr().out


class TestCampaignDigests:
    """The resolved backend is part of the verdict-cache identity."""

    def test_walk_jobs_digest_the_resolved_backend(self):
        job = VerificationJob("j", "conditional", checker="walk")
        assert job.options()["walk_backend"] == resolve_walk_backend("auto")
        scalar = VerificationJob(
            "j", "conditional", checker="walk",
            checker_options={"walk": {"backend": "scalar"}})
        assert scalar.options()["walk_backend"] == "scalar"
        if numpy_available():
            assert (options_digest(job.options())
                    != options_digest(scalar.options()))

    def test_portfolio_jobs_resolve_the_nested_member_backend(self):
        job = VerificationJob(
            "j", "conditional", checker="portfolio",
            checker_options={"portfolio": {"walk": {"backend": "scalar"}}})
        assert job.options()["walk_backend"] == "scalar"

    def test_exhaustive_jobs_carry_no_walk_backend(self):
        job = VerificationJob("j", "conditional", checker="exhaustive")
        assert "walk_backend" not in job.options()

    def test_wire_roundtrip_rederives_the_backend(self):
        job = VerificationJob("j", "conditional", checker="walk")
        payload = job.to_dict()
        assert "walk_backend" in payload
        rebuilt = VerificationJob.from_dict(payload)
        assert rebuilt.options()["walk_backend"] == resolve_walk_backend(
            "auto")

    def test_swarm_width_rides_checker_options_into_the_digest(self):
        wide = VerificationJob(
            "j", "conditional", checker="walk",
            checker_options={"walk": {"swarm": 8192}})
        narrow = VerificationJob(
            "j", "conditional", checker="walk",
            checker_options={"walk": {"swarm": 64}})
        assert (options_digest(wide.options())
                != options_digest(narrow.options()))
