"""Tests for the write-ahead journal (repro.utils.journal) and fault plans.

The journal's contract mirrors the disk cache's (test_utils_diskcache):
corruption degrades, never crashes.  A torn tail (the expected artefact of
``kill -9`` mid-append) truncates the readable history at the last intact
record; a flipped payload byte is caught by the CRC; an empty segment
contributes nothing; and replaying a journal with duplicated records into
the scheduler leaves it in the same state as replaying it once.
"""

import json
import os
import struct
import zlib

import pytest

from repro.campaign.jobs import VerificationJob
from repro.campaign.scheduler import CampaignScheduler
from repro.utils.faults import FaultError, FaultPlan
from repro.utils.journal import (
    DEFAULT_SEGMENT_BYTES,
    JournalWriter,
    list_segments,
    read_journal,
)

_HEADER = struct.Struct("<II")


def _records(count, start=0):
    return [{"event": "submit", "ticket": "t{:04d}".format(start + index),
             "payload": {"index": start + index}}
            for index in range(count)]


class TestRoundTrip:
    def test_append_then_read_returns_records_in_order(self, tmp_path):
        directory = str(tmp_path / "journal")
        records = _records(25)
        with JournalWriter(directory) as writer:
            for record in records:
                writer.append(record)
        assert read_journal(directory) == records

    def test_missing_directory_reads_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "nowhere")) == []

    def test_reopened_writer_appends_after_existing_records(self, tmp_path):
        directory = str(tmp_path / "journal")
        with JournalWriter(directory) as writer:
            writer.append({"n": 1})
        with JournalWriter(directory) as writer:
            writer.append({"n": 2})
        assert read_journal(directory) == [{"n": 1}, {"n": 2}]

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = JournalWriter(str(tmp_path / "journal"))
        writer.close()
        with pytest.raises(ValueError):
            writer.append({"n": 1})

    def test_segments_rotate_at_the_size_threshold(self, tmp_path):
        directory = str(tmp_path / "journal")
        with JournalWriter(directory, segment_bytes=256) as writer:
            for record in _records(20):
                writer.append(record)
        segments = list_segments(directory)
        assert len(segments) > 1
        assert read_journal(directory) == _records(20)

    def test_default_segment_threshold_is_sane(self):
        assert DEFAULT_SEGMENT_BYTES >= 1 << 20


class TestCorruption:
    def test_truncated_tail_drops_only_the_torn_record(self, tmp_path):
        """kill -9 mid-append leaves a partial frame; reads stop before it."""
        directory = str(tmp_path / "journal")
        records = _records(10)
        with JournalWriter(directory) as writer:
            for record in records:
                writer.append(record)
        tail = list_segments(directory)[-1]
        with open(tail, "r+b") as handle:
            handle.truncate(os.path.getsize(tail) - 3)
        recovered = read_journal(directory)
        assert recovered == records[:-1]

    def test_flipped_payload_byte_truncates_at_the_bad_record(self, tmp_path):
        directory = str(tmp_path / "journal")
        records = _records(10)
        with JournalWriter(directory) as writer:
            for record in records:
                writer.append(record)
        tail = list_segments(directory)[-1]
        # Corrupt one byte inside the 4th record's payload.
        with open(tail, "rb") as handle:
            data = handle.read()
        offset = 0
        for _ in range(3):
            length, _ = _HEADER.unpack_from(data, offset)
            offset += _HEADER.size + length
        position = offset + _HEADER.size + 2
        with open(tail, "r+b") as handle:
            handle.seek(position)
            original = handle.read(1)
            handle.seek(position)
            handle.write(bytes([original[0] ^ 0xFF]))
        assert read_journal(directory) == records[:3]

    def test_damage_hides_later_segments_too(self, tmp_path):
        """Records after the damage point were written later: ignore them."""
        directory = str(tmp_path / "journal")
        with JournalWriter(directory, segment_bytes=128) as writer:
            for record in _records(12):
                writer.append(record)
        first = list_segments(directory)[0]
        with open(first, "r+b") as handle:
            handle.seek(_HEADER.size + 1)
            handle.write(b"\xff")
        recovered = read_journal(directory)
        assert recovered == []  # first record of the first segment is bad

    def test_empty_segment_contributes_no_records(self, tmp_path):
        directory = str(tmp_path / "journal")
        with JournalWriter(directory) as writer:
            writer.append({"n": 1})
        open(os.path.join(directory, "wal-0000000009.log"), "wb").close()
        assert read_journal(directory) == [{"n": 1}]

    def test_writer_repairs_a_torn_tail_on_reopen(self, tmp_path):
        """Appends after a crash land frame-aligned, not after garbage."""
        directory = str(tmp_path / "journal")
        with JournalWriter(directory) as writer:
            writer.append({"n": 1})
            writer.append({"n": 2})
        tail = list_segments(directory)[-1]
        with open(tail, "ab") as handle:
            handle.write(b"\x07\x00\x00")  # dangling partial header
        with JournalWriter(directory) as writer:
            writer.append({"n": 3})
        assert read_journal(directory) == [{"n": 1}, {"n": 2}, {"n": 3}]

    def test_non_json_payload_with_valid_crc_is_damage(self, tmp_path):
        directory = str(tmp_path / "journal")
        payload = b"not json at all"
        frame = _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        path = os.path.join(directory, "wal-0000000001.log")
        os.makedirs(directory)
        with open(path, "wb") as handle:
            handle.write(frame + payload)
        assert read_journal(directory) == []


class TestSchedulerReplay:
    """The scheduler's fold over journal records is idempotent."""

    def _journal(self, directory, records):
        with JournalWriter(os.path.join(directory, "journal")) as writer:
            for record in records:
                writer.append(record)

    def test_duplicate_records_replay_to_a_consistent_state(self, tmp_path):
        """A doubled journal (e.g. a re-copied segment) restores one ticket."""
        state = str(tmp_path)
        job = VerificationJob("dup", "pipeline", kwargs={"stages": 2},
                              max_states=5000)
        submit = {"event": "submit", "ticket": "tick01", "job": job.to_dict(),
                  "tenant": None, "priority": 0, "timeout": None, "time": 1.0}
        verdict = {"event": "verdict", "ticket": "tick01", "status": "ok",
                   "payload": {"job_id": "dup", "verdict": {"properties": []}},
                   "error": None, "elapsed": 0.5}
        self._journal(state, [submit, verdict, submit, verdict])
        scheduler = CampaignScheduler(parallelism=0, state_dir=state)
        try:
            ticket = scheduler.get("tick01")
            assert ticket is not None and ticket.done
            assert ticket.result.status == "ok"
            stats = scheduler.stats()
            assert stats["submitted"] == 1
            assert stats["restored"] == 1
            assert stats["requeued"] == 0
        finally:
            scheduler.shutdown()

    def test_last_verdict_wins_on_conflicting_records(self, tmp_path):
        state = str(tmp_path)
        job = VerificationJob("last", "pipeline", kwargs={"stages": 2},
                              max_states=5000)
        submit = {"event": "submit", "ticket": "tick02", "job": job.to_dict(),
                  "tenant": None, "priority": 0, "timeout": None, "time": 1.0}
        early = {"event": "verdict", "ticket": "tick02", "status": "error",
                 "payload": None, "error": "boom", "elapsed": 0.1}
        late = {"event": "verdict", "ticket": "tick02", "status": "ok",
                "payload": {"job_id": "last", "verdict": {"properties": []}},
                "error": None, "elapsed": 0.2}
        self._journal(state, [submit, early, late])
        scheduler = CampaignScheduler(parallelism=0, state_dir=state)
        try:
            assert scheduler.get("tick02").result.status == "ok"
        finally:
            scheduler.shutdown()

    def test_malformed_job_record_is_skipped_not_fatal(self, tmp_path):
        state = str(tmp_path)
        job = VerificationJob("good", "pipeline", kwargs={"stages": 2},
                              max_states=5000)
        bad = {"event": "submit", "ticket": "badid",
               "job": {"factory": "no-such-factory", "nonsense": True},
               "tenant": None, "priority": 0, "timeout": None, "time": 1.0}
        good = {"event": "submit", "ticket": "goodid", "job": job.to_dict(),
                "tenant": None, "priority": 0, "timeout": None, "time": 2.0}
        done = {"event": "verdict", "ticket": "goodid", "status": "ok",
                "payload": {"job_id": "good", "verdict": {"properties": []}},
                "error": None, "elapsed": 0.1}
        self._journal(state, [bad, good, done])
        scheduler = CampaignScheduler(parallelism=0, state_dir=state)
        try:
            assert scheduler.get("badid") is None
            assert scheduler.get("goodid").done
        finally:
            scheduler.shutdown()


class TestFaultPlan:
    def test_counter_spec_fires_on_the_nth_hit_only(self):
        plan = FaultPlan.parse("kill_worker@level=3")
        fired = [plan.trigger("kill_worker", "level") for _ in range(5)]
        assert fired == [False, False, True, False, False]

    def test_bare_name_fires_on_first_hit(self):
        plan = FaultPlan.parse("io_error")
        assert plan.trigger("io_error") is True
        assert plan.trigger("io_error") is False

    def test_sites_count_independently(self):
        plan = FaultPlan.parse("kill_worker@level=2")
        assert plan.trigger("kill_worker", "task") is False
        assert plan.trigger("kill_worker", "level") is False
        assert plan.trigger("kill_worker", "level") is True

    def test_probabilistic_spec_is_deterministic_per_seed(self):
        first = FaultPlan.parse("solver_crash:p=0.5", seed=7)
        second = FaultPlan.parse("solver_crash:p=0.5", seed=7)
        draws_a = [first.trigger("solver_crash", "query") for _ in range(64)]
        draws_b = [second.trigger("solver_crash", "query") for _ in range(64)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_p_zero_never_fires_p_one_always_fires(self):
        never = FaultPlan.parse("io_error@write:p=0.0")
        always = FaultPlan.parse("io_error@write:p=1.0")
        assert not any(never.trigger("io_error", "write") for _ in range(16))
        assert all(always.trigger("io_error", "write") for _ in range(16))

    def test_invalid_specs_are_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("kill_worker@level")
        with pytest.raises(ValueError):
            FaultPlan.parse("kill_worker@level=0")
        with pytest.raises(ValueError):
            FaultPlan.parse("solver_crash:q=0.5")
        with pytest.raises(ValueError):
            FaultPlan.parse("solver_crash:p=1.5")

    def test_from_env_reads_spec_and_seed(self):
        plan = FaultPlan.from_env({"REPRO_FAULTS": "io_error@write=2",
                                   "REPRO_FAULTS_SEED": "9"})
        assert plan.seed == 9
        assert plan.trigger("io_error", "write") is False
        assert plan.trigger("io_error", "write") is True
        assert FaultPlan.from_env({}) is None

    def test_fault_error_is_an_os_error(self):
        assert issubclass(FaultError, OSError)
