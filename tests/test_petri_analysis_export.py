"""Tests for repro.petri.analysis and repro.petri.export."""

from repro.petri.analysis import (
    incidence_matrix,
    invariant_value,
    place_invariants,
    transition_invariants,
)
from repro.petri.export import to_dot, to_g_format
from repro.petri.net import PetriNet
from repro.petri.reachability import explore


def complementary_pair_net():
    """x_0 / x_1 complementary places with x+ and x- transitions."""
    net = PetriNet("pair")
    net.add_place("x_0", tokens=1)
    net.add_place("x_1")
    net.add_transition("x+")
    net.add_transition("x-")
    net.add_arc("x_0", "x+")
    net.add_arc("x+", "x_1")
    net.add_arc("x_1", "x-")
    net.add_arc("x-", "x_0")
    return net


class TestIncidenceMatrix:
    def test_shape_and_entries(self):
        net = complementary_pair_net()
        matrix, places, transitions = incidence_matrix(net)
        assert matrix.shape == (len(places), len(transitions))
        row = {name: index for index, name in enumerate(places)}
        col = {name: index for index, name in enumerate(transitions)}
        assert matrix[row["x_0"], col["x+"]] == -1
        assert matrix[row["x_1"], col["x+"]] == 1

    def test_read_arcs_do_not_contribute(self):
        net = complementary_pair_net()
        net.add_place("guard", tokens=1)
        net.add_read_arc("guard", "x+")
        matrix, places, _ = incidence_matrix(net)
        guard_row = matrix[places.index("guard")]
        assert not guard_row.any()


class TestInvariants:
    def test_complementary_pair_is_a_place_invariant(self):
        invariants = place_invariants(complementary_pair_net())
        assert any(set(inv) == {"x_0", "x_1"} and set(inv.values()) == {1}
                   for inv in invariants)

    def test_invariant_value_constant_over_reachable_states(self):
        net = complementary_pair_net()
        invariants = place_invariants(net)
        graph = explore(net)
        for invariant in invariants:
            values = {invariant_value(invariant, marking) for marking in graph.states}
            assert len(values) == 1

    def test_transition_invariant_of_the_cycle(self):
        invariants = transition_invariants(complementary_pair_net())
        assert any(set(inv) == {"x+", "x-"} for inv in invariants)


class TestExport:
    def test_dot_contains_all_elements(self):
        net = complementary_pair_net()
        dot = to_dot(net)
        assert dot.startswith("digraph")
        for name in ("x_0", "x_1", "x+", "x-"):
            assert name in dot

    def test_dot_highlight(self):
        dot = to_dot(complementary_pair_net(), highlight=["x_0"])
        assert "color=red" in dot

    def test_dot_read_arc_rendered_dashed(self):
        net = complementary_pair_net()
        net.add_place("guard", tokens=1)
        net.add_read_arc("guard", "x+")
        assert "style=dashed" in to_dot(net)

    def test_g_format_sections(self):
        text = to_g_format(complementary_pair_net())
        assert ".model" in text
        assert ".graph" in text
        assert ".marking {x_0}" in text
        assert text.rstrip().endswith(".end")
