"""Tests for dual-rail signals and NCL gates."""

import pytest

from repro.exceptions import CircuitError
from repro.circuits.gates import (
    CElement,
    NclGate,
    and_gate,
    c_element_chain_depth,
    c_element_tree_depth,
    majority,
    not_gate,
    or_gate,
    threshold,
)
from repro.circuits.signals import (
    DualRail,
    Rail,
    completion,
    decode_word,
    encode_word,
    is_complete,
    is_null,
    null_word,
)


class TestDualRail:
    def test_states(self):
        assert DualRail.null().state is Rail.NULL
        assert DualRail.from_bool(True).state is Rail.TRUE
        assert DualRail.from_bool(False).state is Rail.FALSE

    def test_illegal_state_rejected(self):
        with pytest.raises(CircuitError):
            DualRail(1, 1)

    def test_decode(self):
        assert DualRail.from_bool(True).to_bool() is True
        with pytest.raises(CircuitError):
            DualRail.null().to_bool()

    def test_word_round_trip(self):
        for value in (0, 1, 5, 255):
            assert decode_word(encode_word(value, 8)) == value

    def test_word_overflow_rejected(self):
        with pytest.raises(CircuitError):
            encode_word(16, 4)
        with pytest.raises(CircuitError):
            encode_word(-1, 4)

    def test_completion_detection(self):
        word = encode_word(9, 4)
        assert is_complete(word) and completion(word) == 1
        spacer = null_word(4)
        assert is_null(spacer) and completion(spacer) == 0
        partial = (DualRail.from_bool(True),) + tuple(null_word(3))
        assert completion(partial) is None

    def test_decode_incomplete_word_rejected(self):
        with pytest.raises(CircuitError):
            decode_word(null_word(4))


class TestGates:
    def test_simple_gates(self):
        assert and_gate(2).evaluate([1, 1]) == 1
        assert and_gate(2).evaluate([1, 0]) == 0
        assert or_gate(2).evaluate([0, 1]) == 1
        assert not_gate().evaluate([0]) == 1

    def test_gate_arity_check(self):
        with pytest.raises(CircuitError):
            and_gate(2).evaluate([1])

    def test_threshold_gate_hysteresis(self):
        gate = threshold(2, 3)
        assert gate.evaluate([1, 1, 0], previous=0) == 1
        # Holds its value until all inputs return to zero.
        assert gate.evaluate([1, 0, 0], previous=1) == 1
        assert gate.evaluate([0, 0, 0], previous=1) == 0
        assert gate.evaluate([1, 0, 0], previous=0) == 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(CircuitError):
            NclGate(4, 3)

    def test_c_element_behaviour(self):
        gate = CElement(2)
        assert gate.evaluate([1, 1], previous=0) == 1
        assert gate.evaluate([1, 0], previous=1) == 1
        assert gate.evaluate([0, 0], previous=1) == 0

    def test_majority_gate(self):
        gate = majority(3)
        assert gate.evaluate([1, 1, 0], previous=0) == 1
        with pytest.raises(CircuitError):
            majority(4)


class TestSyncDepths:
    def test_tree_depth_is_logarithmic(self):
        assert c_element_tree_depth(2) == 1
        assert c_element_tree_depth(8) == 3
        assert c_element_tree_depth(18) == 5

    def test_chain_depth_is_linear(self):
        assert c_element_chain_depth(2) == 1
        assert c_element_chain_depth(18) == 17

    def test_single_leaf(self):
        assert c_element_tree_depth(1) == 0
        assert c_element_chain_depth(1) == 0

    def test_invalid_inputs(self):
        with pytest.raises(CircuitError):
            c_element_tree_depth(0)
        with pytest.raises(CircuitError):
            c_element_tree_depth(4, fan_in=1)
        with pytest.raises(CircuitError):
            c_element_chain_depth(0)
