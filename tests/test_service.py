"""Tests of the serving stack (repro.service) and the scheduling core.

The load-bearing contracts:

* **single flight**: N concurrent submissions of one identical job execute
  exactly once on the worker pool (counted via marker files written by the
  model factory, keyed by pid so submit-side key builds in the parent are
  distinguishable from pool executions in children);
* **tenancy**: tenants resolve to disjoint cache namespaces and can never
  observe each other's verdicts;
* **admission control**: a full queue answers 429-shaped ``ServiceBusy``
  and a noisy tenant exhausts only its own token bucket;
* **the HTTP API**: submit -> poll -> stream -> report round-trips through
  a real socket with the stdlib client, and the remote CLI path renders
  the same report a local run would.
"""

import json
import os
import threading
import uuid

import pytest

from repro.campaign.jobs import VerificationJob, register_factory
from repro.campaign.scheduler import CampaignScheduler
from repro.dfs.examples import conditional_comp_dfs
from repro.exceptions import ConfigurationError
from repro.parallel.context import start_method
from repro.service import (
    ClientBusy,
    RateLimited,
    ServiceBusy,
    ServiceClient,
    ServiceClientError,
    ServiceDaemon,
    TokenBucket,
    VerificationService,
    result_from_record,
)
from repro.workcraft.cli import main as cli_main

needs_fork = pytest.mark.skipif(
    start_method() != "fork",
    reason="registry factories only reach workers under the fork start method")


def _counting_factory(count_dir=None, **kwargs):
    """Build the small conditional model, leaving one marker file per call.

    Markers are named ``<pid>-<unique>`` so tests can tell submit-side key
    builds (the parent process) apart from pool executions (children).
    """
    if count_dir:
        path = os.path.join(
            count_dir, "{}-{}".format(os.getpid(), uuid.uuid4().hex))
        with open(path, "w", encoding="utf-8"):
            pass
    return conditional_comp_dfs()


register_factory("_test_counting", _counting_factory)


def _pool_executions(count_dir):
    """Marker files written by processes other than this one."""
    pid = str(os.getpid())
    return [name for name in os.listdir(count_dir)
            if not name.startswith(pid + "-")]


def _counting_job(job_id, count_dir):
    return VerificationJob(job_id, "_test_counting",
                           kwargs={"count_dir": count_dir},
                           properties=("safeness", "deadlock"))


def _conditional_job(job_id="cond", stages=1):
    return VerificationJob(job_id, "conditional",
                           kwargs={"comp_stages": stages},
                           properties=("safeness", "deadlock"))


class _DaemonThread:
    """Run a ServiceDaemon on an ephemeral port in a background thread."""

    def __init__(self, service):
        self.service = service
        self.daemon = None
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        import asyncio

        async def main():
            self.daemon = ServiceDaemon(self.service, port=0)
            await self.daemon.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.daemon.stop()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "daemon failed to start"
        return self.daemon

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)
        self.service.close()


# -- the token bucket ---------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)  # 1 token at 2 tokens/s
        clock[0] = 0.5
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_rejected_requests_spend_nothing(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: clock[0])
        assert bucket.try_acquire() == 0.0
        first = bucket.try_acquire()
        second = bucket.try_acquire()
        assert first == second == pytest.approx(1.0)

    def test_bucket_never_exceeds_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=lambda: clock[0])
        clock[0] = 100.0
        assert bucket.available == pytest.approx(3.0)

    def test_rejects_non_positive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=-1)


# -- the wire protocol --------------------------------------------------------


class TestWireForm:
    def test_to_dict_from_dict_round_trip(self):
        job = _conditional_job("wire", stages=2)
        clone = VerificationJob.from_dict(job.to_dict())
        assert clone.to_dict() == job.to_dict()
        assert clone.job_id == "wire"
        assert clone.kwargs == {"comp_stages": 2}

    def test_missing_required_fields_are_rejected(self):
        with pytest.raises(ConfigurationError):
            VerificationJob.from_dict({"factory": "conditional"})
        with pytest.raises(ConfigurationError):
            VerificationJob.from_dict({"job_id": "x"})

    def test_unknown_fields_are_rejected_loudly(self):
        payload = _conditional_job().to_dict()
        payload["max_sates"] = 100  # the typo this guard exists for
        with pytest.raises(ConfigurationError, match="unknown job field"):
            VerificationJob.from_dict(payload)

    def test_result_from_record_rebuilds_local_result(self):
        job = _conditional_job()
        record = {"status": "done",
                  "result": {"status": "ok", "elapsed": 0.25,
                             "cache": "hit", "model": "conditional",
                             "verdict": {"properties": [
                                 {"property": "safeness", "holds": True}]}}}
        result = result_from_record(job, record)
        assert result.status == "ok"
        assert result.outcome == "pass"
        assert result.cache_status == "hit"
        assert result.payload["job_id"] == job.job_id

    def test_result_from_record_tolerates_missing_result(self):
        result = result_from_record(_conditional_job(), {"status": "queued"})
        assert result.status == "error"
        assert result.payload is None


# -- the scheduling core ------------------------------------------------------


class TestSchedulerTenancy:
    def test_tenants_resolve_to_disjoint_namespaces(self, tmp_path):
        scheduler = CampaignScheduler(parallelism=0,
                                      cache_dir=str(tmp_path / "cache"))
        root = scheduler.cache_for(None)
        alice = scheduler.cache_for("alice")
        bob = scheduler.cache_for("bob")
        assert root.directory == str(tmp_path / "cache")
        assert alice.directory != bob.directory != root.directory
        assert alice.directory.startswith(root.directory)

    def test_hostile_tenant_names_stay_under_the_cache_root(self, tmp_path):
        scheduler = CampaignScheduler(parallelism=0,
                                      cache_dir=str(tmp_path / "cache"))
        evil = scheduler.cache_for("../../etc")
        root = os.path.realpath(str(tmp_path / "cache"))
        assert os.path.realpath(evil.directory).startswith(root)
        assert scheduler.cache_for("a/b").directory != \
            scheduler.cache_for("a-b").directory

    def test_tenants_never_share_verdicts(self, tmp_path):
        scheduler = CampaignScheduler(parallelism=0,
                                      cache_dir=str(tmp_path / "cache"),
                                      single_flight=True)
        cold = scheduler.submit(_conditional_job("a1"), tenant="alice")
        assert cold.wait(60).cache_status == "miss"
        warm = scheduler.submit(_conditional_job("a2"), tenant="alice")
        assert warm.wait(60).cache_status == "hit"
        other = scheduler.submit(_conditional_job("b1"), tenant="bob")
        assert other.wait(60).cache_status == "miss"
        assert scheduler.stats()["cache_hits"] == 1

    def test_warm_hit_ticket_is_done_at_submission(self, tmp_path):
        scheduler = CampaignScheduler(parallelism=0,
                                      cache_dir=str(tmp_path / "cache"),
                                      single_flight=True)
        scheduler.submit(_conditional_job("c1")).wait(60)
        ticket = scheduler.submit(_conditional_job("c2"))
        assert ticket.done
        events = [entry["event"] for entry in ticket.events()]
        assert events == ["job-queued", "cache-hit", "job-finished"]
        assert ticket.result.verdict is not None


class TestSchedulerSingleFlight:
    @needs_fork
    def test_concurrent_identical_submissions_execute_once(self, tmp_path):
        count_dir = str(tmp_path / "count")
        os.makedirs(count_dir)
        scheduler = CampaignScheduler(parallelism=2,
                                      cache_dir=str(tmp_path / "cache"),
                                      single_flight=True)
        try:
            tickets = [None] * 8
            def submit(index):
                tickets[index] = scheduler.submit(
                    _counting_job("stampede-{}".format(index), count_dir))
            threads = [threading.Thread(target=submit, args=(index,))
                       for index in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            results = [ticket.wait(60) for ticket in tickets]
        finally:
            scheduler.shutdown()
        assert all(result.status == "ok" for result in results)
        verdicts = [result.verdict for result in results]
        assert all(verdict == verdicts[0] for verdict in verdicts)
        # Exactly one submission reached the pool; every concurrent
        # duplicate was coalesced onto it (or answered warm if it landed
        # after the leader finished).
        caches = sorted(result.cache_status for result in results)
        assert caches.count("miss") == 1
        assert set(caches) <= {"miss", "coalesced", "hit"}
        assert len(_pool_executions(count_dir)) == 1

    @needs_fork
    def test_distinct_tenants_do_not_coalesce(self, tmp_path):
        count_dir = str(tmp_path / "count")
        os.makedirs(count_dir)
        scheduler = CampaignScheduler(parallelism=2,
                                      cache_dir=str(tmp_path / "cache"),
                                      single_flight=True)
        try:
            one = scheduler.submit(_counting_job("t-a", count_dir),
                                   tenant="alice")
            two = scheduler.submit(_counting_job("t-b", count_dir),
                                   tenant="bob")
            assert one.wait(60).cache_status == "miss"
            assert two.wait(60).cache_status == "miss"
        finally:
            scheduler.shutdown()
        assert len(_pool_executions(count_dir)) == 2

    def test_broken_factory_still_surfaces_the_worker_error(self, tmp_path):
        scheduler = CampaignScheduler(parallelism=0,
                                      cache_dir=str(tmp_path / "cache"),
                                      single_flight=True)
        ticket = scheduler.submit(
            VerificationJob("bad", "no-such-factory"))
        result = ticket.wait(60)
        assert result.status == "error"
        assert "unknown model factory" in result.error

    def test_submission_after_shutdown_is_rejected(self, tmp_path):
        scheduler = CampaignScheduler(parallelism=0)
        scheduler.shutdown()
        with pytest.raises(ConfigurationError):
            scheduler.submit(_conditional_job())


# -- service admission control ------------------------------------------------


class TestAdmissionControl:
    def test_full_queue_rejects_with_retry_hint(self, tmp_path):
        service = VerificationService(parallelism=1, max_depth=0,
                                      cache_dir=str(tmp_path / "cache"))
        try:
            with pytest.raises(ServiceBusy) as caught:
                service.submit(_conditional_job().to_dict())
            assert caught.value.retry_after > 0
            assert service.stats()["rejected"]["busy"] == 1
        finally:
            service.close()

    def test_rate_limit_is_per_tenant(self, tmp_path):
        # burst=1 with a tiny rate: each tenant's first submission spends
        # its only token (then hits the depth bound, proving the token was
        # spent); the second submission is rate-limited.  A fresh tenant
        # still has its own full bucket.
        service = VerificationService(parallelism=1, max_depth=0,
                                      rate=0.001, burst=1.0,
                                      cache_dir=str(tmp_path / "cache"))
        try:
            with pytest.raises(ServiceBusy):
                service.submit(_conditional_job().to_dict(), tenant="noisy")
            with pytest.raises(RateLimited) as caught:
                service.submit(_conditional_job().to_dict(), tenant="noisy")
            assert caught.value.retry_after > 0
            with pytest.raises(ServiceBusy) as other:
                service.submit(_conditional_job().to_dict(), tenant="quiet")
            assert not isinstance(other.value, RateLimited)
            stats = service.stats()
            assert stats["rejected"] == {"busy": 2, "rate": 1}
            assert stats["tenants"] == 2
        finally:
            service.close()

    def test_malformed_job_is_a_configuration_error(self, tmp_path):
        service = VerificationService(parallelism=1,
                                      cache_dir=str(tmp_path / "cache"))
        try:
            with pytest.raises(ConfigurationError):
                service.submit({"factory": "conditional"})
        finally:
            service.close()


# -- the HTTP API -------------------------------------------------------------


class TestHttpApi:
    def test_submit_poll_stream_report_round_trip(self, tmp_path):
        service = VerificationService(parallelism=1,
                                      cache_dir=str(tmp_path / "cache"))
        with _DaemonThread(service) as daemon:
            client = ServiceClient(daemon.address, tenant="ci")
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["parallelism"] == 1

            ticket = client.submit(_conditional_job("http-1"))
            assert ticket["job_id"] == "http-1"
            assert ticket["tenant"] == "ci"
            assert ticket["links"]["events"].endswith("/events")

            record = client.wait(ticket["id"], timeout=120.0)
            assert record["status"] == "done"
            assert record["result"]["status"] == "ok"
            assert record["result"]["cache"] == "miss"

            events = list(client.events(ticket["id"]))
            names = [event["event"] for event in events]
            assert names[0] == "job-queued"
            assert names[-1] == "job-finished"
            assert "property-finished" in names
            assert [event["seq"] for event in events] == \
                list(range(len(events)))

            report = client.report(ticket["id"])
            assert report["summary"]["jobs"] == 1
            assert report["summary"]["mismatched"] == 0
            markdown = client.report(ticket["id"], fmt="markdown")
            assert "| scenario |" in markdown

            # A warm resubmission (same tenant) is answered at submit time.
            warm = client.submit(_conditional_job("http-2"))
            assert warm["status"] == "done"
            assert warm["result"]["cache"] == "hit"
            # A different tenant's cache is cold for the same content key.
            other = ServiceClient(daemon.address, tenant="other")
            cold = other.submit(_conditional_job("http-3"))
            assert other.wait(cold["id"],
                              timeout=120.0)["result"]["cache"] == "miss"

            stats = client.stats()
            assert stats["submitted"] == 3
            assert stats["cache_hits"] == 1

    def test_error_statuses(self, tmp_path):
        service = VerificationService(parallelism=1,
                                      cache_dir=str(tmp_path / "cache"))
        with _DaemonThread(service) as daemon:
            client = ServiceClient(daemon.address)
            with pytest.raises(ServiceClientError) as missing:
                client.job("no-such-ticket")
            assert missing.value.status == 404
            with pytest.raises(ServiceClientError) as missing:
                client.report("no-such-ticket")
            assert missing.value.status == 404

            bad = _conditional_job().to_dict()
            bad["max_sates"] = 7
            with pytest.raises(ServiceClientError) as rejected:
                client.submit(bad)
            assert rejected.value.status == 400
            assert "unknown job field" in str(rejected.value)

            ticket = client.submit(_conditional_job("fmt"))
            client.wait(ticket["id"], timeout=120.0)
            with pytest.raises(ServiceClientError) as fmt:
                client.report(ticket["id"], fmt="xml")
            assert fmt.value.status == 400

    def test_backpressure_maps_to_429_with_retry_after(self, tmp_path):
        service = VerificationService(parallelism=1, max_depth=0,
                                      cache_dir=str(tmp_path / "cache"))
        with _DaemonThread(service) as daemon:
            client = ServiceClient(daemon.address)
            with pytest.raises(ClientBusy) as caught:
                client.submit(_conditional_job())
            assert caught.value.status == 429
            assert caught.value.retry_after >= 1.0

    @needs_fork
    def test_http_stampede_executes_once(self, tmp_path):
        count_dir = str(tmp_path / "count")
        os.makedirs(count_dir)
        service = VerificationService(parallelism=2,
                                      cache_dir=str(tmp_path / "cache"))
        with _DaemonThread(service) as daemon:
            client = ServiceClient(daemon.address, tenant="ci")
            tickets = [None] * 8
            def submit(index):
                tickets[index] = client.submit(
                    _counting_job("http-stampede-{}".format(index),
                                  count_dir))
            threads = [threading.Thread(target=submit, args=(index,))
                       for index in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            records = [client.wait(ticket["id"], timeout=120.0)
                       for ticket in tickets]
        caches = sorted(record["result"]["cache"] for record in records)
        assert all(record["result"]["status"] == "ok" for record in records)
        assert caches.count("miss") == 1
        assert len(_pool_executions(count_dir)) == 1

    def test_remote_campaign_cli_round_trip(self, tmp_path):
        service = VerificationService(parallelism=1,
                                      cache_dir=str(tmp_path / "cache"))
        with _DaemonThread(service) as daemon:
            report_path = str(tmp_path / "remote.json")
            argv = ["campaign", "--grid", "depth=2", "--server",
                    daemon.address, "--tenant", "ci", "--json", report_path,
                    "--quiet"]
            assert cli_main(argv) == 0
            payload = json.load(open(report_path, encoding="utf-8"))
            assert payload["summary"]["jobs"] == 1
            assert payload["summary"]["mismatched"] == 0
            # The daemon's cache served nothing cold the second time round.
            assert cli_main(argv) == 0
            warm = json.load(open(report_path, encoding="utf-8"))
            assert warm["summary"]["cache_hits"] == 1
