"""Tests for repro.dfs.model and repro.dfs.nodes."""

import pytest

from repro.exceptions import ModelError
from repro.dfs.model import DataflowStructure
from repro.dfs.nodes import NodeType, RegisterNode


class TestNodeCreation:
    def test_node_type_categories(self):
        assert not NodeType.LOGIC.is_register
        assert NodeType.REGISTER.is_register
        assert not NodeType.REGISTER.is_dynamic
        assert NodeType.CONTROL.is_dynamic
        assert NodeType.PUSH.is_dynamic
        assert NodeType.POP.is_dynamic

    def test_register_node_requires_register_type(self):
        with pytest.raises(ModelError):
            RegisterNode("r", NodeType.LOGIC)

    def test_initial_value_only_for_marked_dynamic_registers(self):
        plain = RegisterNode("r", NodeType.REGISTER, marked=True, initial_value=True)
        assert plain.initial_value is None
        unmarked = RegisterNode("c", NodeType.CONTROL, marked=False, initial_value=False)
        assert unmarked.initial_value is None
        marked = RegisterNode("c2", NodeType.CONTROL, marked=True, initial_value=False)
        assert marked.initial_value is False

    def test_default_initial_value_is_true(self):
        node = RegisterNode("c", NodeType.CONTROL, marked=True)
        assert node.initial_value is True

    def test_invalid_name_rejected(self):
        dfs = DataflowStructure()
        with pytest.raises(ModelError):
            dfs.add_logic("1bad")


class TestStructure:
    def build(self):
        dfs = DataflowStructure("m")
        dfs.add_register("in", marked=True)
        dfs.add_logic("f")
        dfs.add_logic("g")
        dfs.add_register("mid")
        dfs.add_register("out")
        dfs.connect_chain("in", "f", "mid", "g", "out")
        return dfs

    def test_duplicate_node_rejected(self):
        dfs = DataflowStructure()
        dfs.add_logic("f")
        with pytest.raises(ValueError):
            dfs.add_logic("f")

    def test_self_loop_rejected(self):
        dfs = DataflowStructure()
        dfs.add_register("r")
        with pytest.raises(ModelError):
            dfs.connect("r", "r")

    def test_edge_to_unknown_node_rejected(self):
        dfs = DataflowStructure()
        dfs.add_register("r")
        with pytest.raises(ModelError):
            dfs.connect("r", "missing")

    def test_preset_postset(self):
        dfs = self.build()
        assert dfs.preset("f") == {"in"}
        assert dfs.postset("f") == {"mid"}

    def test_r_preset_through_logic(self):
        dfs = self.build()
        assert dfs.r_preset("mid") == {"in"}
        assert dfs.r_preset("out") == {"mid"}

    def test_r_postset_through_logic(self):
        dfs = self.build()
        assert dfs.r_postset("in") == {"mid"}
        assert dfs.r_postset("mid") == {"out"}

    def test_r_preset_stops_at_registers(self):
        dfs = self.build()
        # "in" is separated from "out" by the register "mid".
        assert "in" not in dfs.r_preset("out")

    def test_r_sets_updated_after_edit(self):
        dfs = self.build()
        assert dfs.r_postset("mid") == {"out"}
        dfs.add_register("extra")
        dfs.connect("g", "extra")
        assert dfs.r_postset("mid") == {"out", "extra"}

    def test_remove_edge(self):
        dfs = self.build()
        dfs.remove_edge("g", "out")
        assert dfs.postset("g") == set()
        with pytest.raises(ModelError):
            dfs.remove_edge("g", "out")

    def test_inputs_and_outputs(self):
        dfs = self.build()
        assert dfs.input_registers() == ["in"]
        assert dfs.output_registers() == ["out"]

    def test_stats(self):
        stats = self.build().stats()
        assert stats["register"] == 3
        assert stats["logic"] == 2
        assert stats["edges"] == 4

    def test_copy_is_deep(self):
        dfs = self.build()
        clone = dfs.copy()
        clone.node("in").marked = False
        assert dfs.node("in").marked is True
        assert clone.edges == dfs.edges


class TestControls:
    def test_controls_of_and_controlled_by(self):
        dfs = DataflowStructure()
        dfs.add_control("ctrl", marked=True, value=True)
        dfs.add_push("p")
        dfs.add_register("r", marked=True)
        dfs.connect("ctrl", "p")
        dfs.connect("r", "p")
        assert dfs.controls_of("p") == {"ctrl"}
        assert dfs.controlled_by("ctrl") == {"p"}

    def test_set_initial_marking(self):
        dfs = DataflowStructure()
        dfs.add_register("a")
        dfs.add_control("c")
        dfs.set_initial_marking(["a", "c"], values={"c": False})
        assert dfs.node("a").marked
        assert dfs.node("c").marked and dfs.node("c").initial_value is False
        dfs.set_initial_marking({"a": False, "c": False})
        assert not dfs.node("a").marked
        assert dfs.node("c").initial_value is None

    def test_cannot_mark_logic(self):
        dfs = DataflowStructure()
        dfs.add_logic("f")
        with pytest.raises(ModelError):
            dfs.set_initial_marking(["f"])
