"""Tests for repro.utils.naming."""

import pytest

from repro.utils.naming import NameRegistry, is_valid_name, make_unique


class TestIsValidName:
    def test_simple_identifier(self):
        assert is_valid_name("local_in")

    def test_hierarchical_name(self):
        assert is_valid_name("s3.local_in")

    def test_indexed_name(self):
        assert is_valid_name("stage[4]")

    def test_transition_suffix_plus(self):
        assert is_valid_name("Mt_ctrl+")

    def test_transition_suffix_minus(self):
        assert is_valid_name("C_f-")

    def test_rejects_leading_digit(self):
        assert not is_valid_name("3bad")

    def test_rejects_spaces(self):
        assert not is_valid_name("bad name")

    def test_rejects_empty(self):
        assert not is_valid_name("")

    def test_rejects_non_string(self):
        assert not is_valid_name(42)

    def test_rejects_double_sign(self):
        assert not is_valid_name("x++")


class TestMakeUnique:
    def test_returns_base_when_free(self):
        assert make_unique("reg", set()) == "reg"

    def test_appends_counter(self):
        assert make_unique("reg", {"reg"}) == "reg_1"

    def test_skips_taken_counters(self):
        assert make_unique("reg", {"reg", "reg_1", "reg_2"}) == "reg_3"


class TestNameRegistry:
    def test_register_and_contains(self):
        registry = NameRegistry()
        registry.register("a")
        assert "a" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = NameRegistry()
        registry.register("a")
        with pytest.raises(ValueError):
            registry.register("a")

    def test_invalid_rejected(self):
        registry = NameRegistry()
        with pytest.raises(ValueError):
            registry.register("1bad")

    def test_fresh_generates_unique_names(self):
        registry = NameRegistry()
        first = registry.fresh("node")
        second = registry.fresh("node")
        assert first == "node"
        assert second == "node_1"
        assert first in registry and second in registry

    def test_release_frees_name(self):
        registry = NameRegistry()
        registry.register("a")
        registry.release("a")
        assert "a" not in registry
        registry.register("a")
