"""Tests for the DFS builder and JSON serialization."""

import pytest

from repro.exceptions import ModelError, SerializationError
from repro.dfs.builder import DfsBuilder
from repro.dfs.examples import conditional_comp_dfs
from repro.dfs.nodes import NodeType
from repro.dfs.serialization import (
    dfs_from_document,
    dfs_from_json,
    dfs_to_document,
    dfs_to_json,
)


class TestBuilder:
    def test_chain_building(self):
        dfs = (DfsBuilder("pipe")
               .register("in", marked=True)
               .logic("f")
               .register("out")
               .chain("in", "f", "out")
               .build())
        assert dfs.preset("f") == {"in"}
        assert dfs.postset("f") == {"out"}

    def test_then_connects_last_node(self):
        dfs = (DfsBuilder()
               .register("a", marked=True)
               .logic("f").then("a")  # f -> a would be odd but legal structurally
               .build())
        assert ("f", "a") in dfs.edges

    def test_then_without_node_raises(self):
        with pytest.raises(ModelError):
            DfsBuilder().then("x")

    def test_chain_needs_two_nodes(self):
        builder = DfsBuilder().register("a")
        with pytest.raises(ModelError):
            builder.chain("a")

    def test_control_with_guards(self):
        dfs = (DfsBuilder()
               .register("a", marked=True)
               .push("p")
               .control("c", marked=True, value=False, controls=["p"])
               .connect("a", "p")
               .build())
        assert dfs.controls_of("p") == {"c"}
        assert dfs.node("c").initial_value is False

    def test_control_loop_structure(self):
        builder = DfsBuilder()
        builder.push("p")
        names = builder.control_loop("loop", length=3, value=True, guards=["p"])
        dfs = builder.build()
        assert len(names) == 3
        assert dfs.node(names[0]).marked
        assert not dfs.node(names[1]).marked
        assert (names[2], names[0]) in dfs.edges
        assert dfs.controls_of("p") == {names[0]}

    def test_control_loop_too_short_rejected(self):
        with pytest.raises(ModelError):
            DfsBuilder().control_loop("loop", length=2)


class TestSerialization:
    def test_round_trip_preserves_structure(self):
        original = conditional_comp_dfs(comp_stages=2)
        document = dfs_to_document(original)
        restored = dfs_from_document(document)
        assert restored.nodes.keys() == original.nodes.keys()
        assert restored.edges == original.edges
        for name in original.nodes:
            assert restored.kind(name) == original.kind(name)
            assert restored.node(name).delay == original.node(name).delay

    def test_round_trip_preserves_marking_and_values(self):
        original = conditional_comp_dfs()
        original.node("ctrl").marked = True
        original.node("ctrl").initial_value = False
        restored = dfs_from_json(dfs_to_json(original))
        assert restored.node("ctrl").marked
        assert restored.node("ctrl").initial_value is False

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "model.json")
        dfs_to_json(conditional_comp_dfs(), path=path)
        restored = dfs_from_json(path)
        assert restored.kind("filt") is NodeType.PUSH

    def test_unknown_node_type_rejected(self):
        document = dfs_to_document(conditional_comp_dfs())
        document["nodes"][0]["type"] = "quantum"
        with pytest.raises(SerializationError):
            dfs_from_document(document)

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            dfs_from_document({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        document = dfs_to_document(conditional_comp_dfs())
        document["version"] = 99
        with pytest.raises(SerializationError):
            dfs_from_document(document)

    def test_malformed_edge_rejected(self):
        document = dfs_to_document(conditional_comp_dfs())
        document["edges"].append(["only-one"])
        with pytest.raises(SerializationError):
            dfs_from_document(document)

    def test_logic_function_preserved(self):
        restored = dfs_from_document(dfs_to_document(conditional_comp_dfs()))
        assert restored.node("cond").function == "cond"
