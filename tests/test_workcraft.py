"""Tests for the tool layer: exporters, plugin registry, projects and the CLI."""

import pytest

from repro.exceptions import ModelError, SerializationError
from repro.dfs.examples import conditional_comp_dfs, token_ring
from repro.dfs.serialization import dfs_to_json
from repro.dfs.translation import to_petri_net
from repro.workcraft.cli import main as cli_main
from repro.workcraft.export import available_formats, dfs_to_dot, export_model
from repro.workcraft.plugins import default_registry
from repro.workcraft.project import Project


class TestExport:
    def test_available_formats(self):
        formats = available_formats()
        assert {"dot", "json", "pn-dot", "g", "verilog"} <= set(formats)

    def test_dfs_to_dot_mentions_every_node(self, conditional_dfs):
        dot = dfs_to_dot(conditional_dfs)
        for name in conditional_dfs.nodes:
            assert name in dot

    def test_dfs_dot_marks_initial_tokens(self):
        ring = token_ring()
        assert "(*)" in dfs_to_dot(ring)

    def test_export_model_all_formats(self, conditional_dfs):
        for format_name in available_formats():
            text = export_model(conditional_dfs, format_name)
            assert isinstance(text, str) and text

    def test_export_petri_net(self, conditional_dfs):
        net = to_petri_net(conditional_dfs)
        assert export_model(net, "dot").startswith("digraph")
        assert ".marking" in export_model(net, "g")
        with pytest.raises(SerializationError):
            export_model(net, "verilog")

    def test_unknown_format_rejected(self, conditional_dfs):
        with pytest.raises(SerializationError):
            export_model(conditional_dfs, "pdf")

    def test_unsupported_object_rejected(self):
        with pytest.raises(SerializationError):
            export_model(42, "dot")


class TestPluginsAndProject:
    def test_default_registry_contents(self):
        registry = default_registry()
        assert "dfs" in registry and "petri" in registry
        plugin = registry.plugin("dfs")
        assert {"validate", "verify", "simulate", "translate", "analyse"} <= set(plugin.operations)

    def test_plugin_for_model(self, conditional_dfs):
        registry = default_registry()
        assert registry.plugin_for(conditional_dfs).name == "dfs"
        with pytest.raises(ModelError):
            registry.plugin_for(object())

    def test_project_add_get_run(self, conditional_dfs):
        project = Project("demo")
        project.add("cond", conditional_dfs)
        assert "cond" in project and len(project) == 1
        issues = project.run("cond", "validate")
        assert isinstance(issues, list)
        summary = project.run("cond", "verify", max_states=50000)
        assert summary.passed

    def test_project_duplicate_and_missing_names(self, conditional_dfs):
        project = Project()
        project.add("m", conditional_dfs)
        with pytest.raises(ModelError):
            project.add("m", conditional_dfs)
        with pytest.raises(ModelError):
            project.get("missing")
        with pytest.raises(ModelError):
            project.run("m", "launch_rockets")

    def test_project_save_and_load(self, tmp_path, conditional_dfs):
        project = Project("demo")
        project.add("cond", conditional_dfs)
        project.add("ring", token_ring())
        directory = str(tmp_path / "workspace")
        project.save(directory)
        loaded = Project.load(directory)
        assert loaded.names() == ["cond", "ring"]
        assert loaded.get("cond").nodes.keys() == conditional_dfs.nodes.keys()

    def test_project_load_missing_manifest(self, tmp_path):
        with pytest.raises(SerializationError):
            Project.load(str(tmp_path))


class TestCli:
    def test_info_on_example(self, capsys):
        assert cli_main(["info", "--example", "conditional"]) == 0
        output = capsys.readouterr().out
        assert "nodes" in output

    def test_validate_example(self):
        assert cli_main(["validate", "--example", "conditional"]) == 0

    def test_verify_example(self, capsys):
        assert cli_main(["verify", "--example", "conditional", "--no-persistence"]) == 0
        assert "deadlock freedom" in capsys.readouterr().out

    def test_simulate_example(self, capsys):
        assert cli_main(["simulate", "--example", "ring", "--steps", "50", "--trace"]) == 0
        assert "fired" in capsys.readouterr().out

    def test_analyse_example(self, capsys):
        assert cli_main(["analyse", "--example", "ring"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_export_to_file_and_model_round_trip(self, tmp_path, capsys, conditional_dfs):
        model_path = str(tmp_path / "cond.json")
        dfs_to_json(conditional_comp_dfs(), path=model_path)
        output_path = str(tmp_path / "cond.dot")
        assert cli_main(["export", model_path, "--format", "dot", "-o", output_path]) == 0
        with open(output_path, encoding="utf-8") as handle:
            assert handle.read().startswith("digraph")

    def test_export_verilog_to_stdout(self, capsys):
        assert cli_main(["export", "--example", "conditional", "--format", "verilog"]) == 0
        assert "module" in capsys.readouterr().out

    def test_missing_model_argument_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["info"])
