"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in editable mode on environments that
lack the ``wheel`` package (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
