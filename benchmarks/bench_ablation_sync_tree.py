"""E9 / Section IV-V ablation: daisy-chain vs tree C-element synchronisation.

The fabricated reconfigurable pipeline synchronises its stages with a
daisy-chain of C-elements, which costs about 36 % in computation time over
the static pipeline; the paper estimates that a tree-like structure (as used
in the static pipeline) would bring the overhead below 10 %.  This ablation
sweeps the pipeline depth for both structures and checks that claim, and also
confirms that the ~5 % energy overhead comes from the control logic rather
than from the synchronisation structure.
"""

import pytest

from repro.ope.circuit import ope_silicon_model
from repro.silicon.chip import SyncStructure

from .conftest import print_table


def _overheads(stages):
    static = ope_silicon_model(stages, reconfigurable=False)
    daisy = ope_silicon_model(stages, reconfigurable=True,
                              sync_structure=SyncStructure.DAISY_CHAIN)
    tree = ope_silicon_model(stages, reconfigurable=True,
                             sync_structure=SyncStructure.TREE)
    return {
        "stages": stages,
        "static_cycle_ns": static.cycle_time_ns(),
        "daisy_cycle_ns": daisy.cycle_time_ns(),
        "tree_cycle_ns": tree.cycle_time_ns(),
        "daisy_time_overhead_%": 100 * (daisy.cycle_time_ns() / static.cycle_time_ns() - 1),
        "tree_time_overhead_%": 100 * (tree.cycle_time_ns() / static.cycle_time_ns() - 1),
        "energy_overhead_%": 100 * (daisy.energy_per_item_pj() / static.energy_per_item_pj() - 1),
    }


def test_ablation_daisy_chain_vs_tree_sync(benchmark):
    rows = [_overheads(stages) for stages in (6, 10, 14, 18)]
    print_table("Ablation -- C-element synchronisation structure", rows)

    full = rows[-1]
    assert full["stages"] == 18
    # As fabricated: ~36 % time overhead with the daisy chain.
    assert full["daisy_time_overhead_%"] == pytest.approx(36.0, abs=3.0)
    # The paper's proposed fix: below 10 % with a tree.
    assert 0.0 < full["tree_time_overhead_%"] < 10.0
    # Energy overhead (~5 %) is due to the control logic, not the sync style.
    assert full["energy_overhead_%"] == pytest.approx(5.0, abs=1.0)

    # The daisy-chain penalty grows with depth; the tree penalty stays flat.
    daisy_overheads = [row["daisy_time_overhead_%"] for row in rows]
    tree_overheads = [row["tree_time_overhead_%"] for row in rows]
    assert daisy_overheads == sorted(daisy_overheads)
    assert max(tree_overheads) - min(tree_overheads) < 3.0

    benchmark(lambda: _overheads(18))
