"""Vectorised walk swarms: falsification throughput, scalar vs batch.

The walk checker's two backends share one semantics (counter-based RNG,
guidance ranks, restart pool -- ``walk_core``), so a backend swap may only
ever change *throughput*.  This bench measures that throughput on the
deadlock hunt over a **clean** 4-stage OPE pipeline: with no deadlock to
find, every walk exhausts its full step budget and the run is a pure
firing-rate measurement (the differential tests cover verdicts; this file
covers speed).

Each row hunts with the same per-walk budget (256 steps) and reports
``seconds_per_kstep`` -- wall-clock seconds per thousand committed firings,
taken from the checker's ``last_hunt_stats``, best of three runs.  The
swarm rows advance 1k / 8k walks as rows of one uint64 matrix per pass on
the batch firing primitive; the scalar row fires one transition at a time
in pure-int Python.

``benchmarks/check_regression.py`` gates the ``swarm-8k`` /``scalar``
per-kstep ratio against the committed baseline, and the assertion below
pins the acceptance floor of the vectorisation: at 8k rows the swarm must
fire at least **5x** the scalar rate.
"""

import time

import pytest

from repro.campaign.jobs import build_pipeline_model
from repro.dfs.translation import to_petri_net
from repro.petri.batch import numpy_available
from repro.verification.checkers import (
    CheckerContext,
    DeadlockQuery,
    create_checker,
)

from .conftest import print_table

#: Per-walk step budget of every row (the walk checker default).
STEPS = 256

#: backend label -> (checker backend, walks, swarm width).  The scalar
#: walker gets a smaller walk count -- the metric is normalised per kstep,
#: and 64 x 256 pure-int firings already time robustly.
CONFIGS = (
    ("scalar", "scalar", 64, 1),
    ("swarm-1k", "batch", 1024, 1024),
    ("swarm-8k", "batch", 8192, 8192),
)


def _hunt_seconds(net, backend, walks, swarm):
    """Best-of-3 deadlock hunt; returns (seconds, committed steps)."""
    best = None
    for _ in range(3):
        checker = create_checker("walk", CheckerContext(net), {
            "backend": backend, "walks": walks, "swarm": swarm,
            "steps": STEPS})
        start = time.perf_counter()
        outcome = checker.check(DeadlockQuery())
        seconds = time.perf_counter() - start
        assert outcome.holds is None, "the clean pipeline has no deadlock"
        stats = checker.last_hunt_stats
        assert stats["backend"] == backend
        if best is None or seconds < best[0]:
            best = (seconds, stats["steps"])
    return best


@pytest.mark.skipif(not numpy_available(),
                    reason="the swarm rows need the optional NumPy extra")
def test_swarm_throughput_over_the_scalar_walker():
    net = to_petri_net(build_pipeline_model(4, static_prefix=1))

    rows = []
    per_kstep = {}
    for label, backend, walks, swarm in CONFIGS:
        seconds, steps = _hunt_seconds(net, backend, walks, swarm)
        # Every walk of the clean model exhausts its full budget.
        assert steps == walks * STEPS
        per_kstep[label] = seconds / (steps / 1000.0)
        rows.append({
            "backend": label, "walks": walks, "steps": steps,
            "seconds": seconds, "seconds_per_kstep": per_kstep[label],
            "speedup": "{:.1f}x".format(
                per_kstep["scalar"] / per_kstep[label]),
        })
    print_table(
        "vectorised walk throughput (clean 4-stage OPE deadlock hunt, "
        "{} steps/walk)".format(STEPS), rows)

    # The acceptance floor of the vectorisation: the 8k-row swarm fires at
    # least 5x faster per step than the pure-int scalar walker.
    assert per_kstep["scalar"] / per_kstep["swarm-8k"] >= 5.0, (
        "swarm-8k is only {:.1f}x the scalar firing rate".format(
            per_kstep["scalar"] / per_kstep["swarm-8k"]))
    # Width pays: the wider swarm amortises per-pass overhead at least as
    # well as the narrow one (allowing a little measurement jitter).
    assert per_kstep["swarm-8k"] <= per_kstep["swarm-1k"] * 1.25
