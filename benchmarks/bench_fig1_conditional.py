"""E1 / Fig. 1: SDFS vs DFS on the conditional-computation motivating example.

The SDFS pipeline always executes the expensive ``comp`` function, so its
cost per item is the worst case and independent of the data.  The DFS
pipeline bypasses ``comp`` whenever ``cond`` yields False, so its cost per
item falls with the fraction of "cheap" (False) items.  The bench measures
the cycle time of both models with the timed token simulator for several
True-token fractions and checks the paper's qualitative claim.
"""

from repro.dfs.examples import conditional_comp_dfs, conditional_comp_sdfs
from repro.performance.timed import TimedDfsSimulator

from .conftest import print_table

COMP_STAGES = 3
COMP_DELAY = 8.0
TOKENS = 30


def _fraction_policy(fraction):
    def policy(node, index):
        return (index % 10) < round(fraction * 10)
    return policy


def _dfs_cycle_time(fraction):
    simulator = TimedDfsSimulator(
        conditional_comp_dfs(comp_stages=COMP_STAGES, comp_delay=COMP_DELAY),
        choice_policy=_fraction_policy(fraction), seed=1)
    return simulator.run("out", token_goal=TOKENS).mean_cycle_time


def _sdfs_cycle_time():
    simulator = TimedDfsSimulator(
        conditional_comp_sdfs(comp_stages=COMP_STAGES, comp_delay=COMP_DELAY), seed=1)
    return simulator.run("out", token_goal=TOKENS).mean_cycle_time


def test_fig1_dfs_vs_sdfs_conditional(benchmark):
    sdfs_cycle = _sdfs_cycle_time()
    rows = []
    for fraction in (0.0, 0.2, 0.5, 0.8, 1.0):
        dfs_cycle = _dfs_cycle_time(fraction)
        rows.append({
            "true_fraction": fraction,
            "dfs_cycle_time": dfs_cycle,
            "sdfs_cycle_time": sdfs_cycle,
            "dfs_speedup_vs_sdfs": sdfs_cycle / dfs_cycle,
        })
    print_table("Fig. 1 -- conditional comp: DFS bypass vs SDFS worst case", rows)

    # Shape of the result: with no expensive items the DFS pipeline is much
    # faster than the always-worst-case SDFS pipeline...
    assert rows[0]["dfs_speedup_vs_sdfs"] > 2.0
    # ...and its cost grows monotonically with the fraction of expensive items.
    cycle_times = [row["dfs_cycle_time"] for row in rows]
    assert cycle_times == sorted(cycle_times)

    benchmark(lambda: _dfs_cycle_time(0.5))
