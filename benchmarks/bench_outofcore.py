"""Out-of-core exploration: disk-backed columnar graphs vs in-RAM.

The claim of the spill layer (:mod:`repro.petri.storage`) is that moving
the columnar arrays onto unlinked ``np.memmap`` files -- and streaming
each completed BFS level out of memory with ``madvise(MADV_DONTNEED)`` --
lets an exploration's peak resident set track the *frontier*, not the
graph, at a small throughput cost.

Both modes build the same ~855k-state prefix-2 OPE graph in a **fresh
subprocess each** (peak RSS is a process-wide monotonic high-water mark,
so the two measurements cannot share an interpreter).  Two gates ride on
the committed baseline via ``check_regression.py``:

* **throughput** -- the disk-backed/in-RAM seconds ratio (the price of
  spilling must not creep up);
* **peak RSS** -- the disk-backed/in-RAM ``peak_rss_kb`` ratio (the
  memory win must not erode).

On top of the relative gates, :data:`RSS_CEILING_KB` asserts the absolute
shape of the result on every run: the in-RAM exploration *exceeds* the
ceiling and the disk-backed one stays *under* it -- i.e. the disk-backed
engine genuinely explores a graph that would not fit the budget.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.petri.batch import numpy_available

from .conftest import print_table

#: Exploration bound; the prefix-2 4-stage OPE completes below it (~855k
#: states over ~144 narrow levels -- a small frontier over a big graph,
#: exactly the shape the spill layer is built for).
MAX_STATES = 1000000

#: The absolute peak-RSS ceiling (KiB) separating the modes: measured
#: ~232 MB in-RAM vs ~101 MB disk-backed, so 160 MB sits mid-gap with
#: >35% margin on both sides.
RSS_CEILING_KB = 160000

_CHILD = r'''
import json, resource, sys, time
mode, max_states, spill_dir = sys.argv[1], int(sys.argv[2]), sys.argv[3]
from repro.campaign.jobs import build_pipeline_model
from repro.dfs.translation import to_petri_net
from repro.petri.batch import explore_batch
from repro.petri.compiled import CompiledNet
from repro.petri.storage import SpillConfig
compiled = CompiledNet.compile(
    to_petri_net(build_pipeline_model(4, static_prefix=2)))
spill = SpillConfig(spill_dir, 0) if mode == "disk-backed" else None
started = time.perf_counter()
graph = explore_batch(compiled, max_states=max_states, spill=spill)
seconds = time.perf_counter() - started
stats = graph.exploration_stats
peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
if sys.platform == "darwin":
    peak //= 1024  # ru_maxrss is bytes on macOS, KiB elsewhere
print(json.dumps({
    "mode": mode, "states": len(graph), "edges": stats["edges"],
    "levels": stats["levels"], "seconds": seconds, "peak_rss_kb": peak,
    "spill_write_bytes": stats["spill"]["write_bytes"],
    "spill_read_bytes": stats["spill"]["read_bytes"],
}))
'''


def _explore_in_subprocess(mode, spill_dir):
    """Run one exploration in a fresh interpreter; return its metrics row."""
    import repro
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ, PYTHONPATH=src_dir)
    # The child's spill behaviour is decided by *this* bench, not by
    # whatever REPRO_SPILL_* the surrounding session exported.
    env.pop("REPRO_SPILL_DIR", None)
    env.pop("REPRO_SPILL_BYTES", None)
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(MAX_STATES), str(spill_dir)],
        env=env, capture_output=True, text=True, timeout=600)
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.splitlines()[-1])


@pytest.mark.skipif(not numpy_available(),
                    reason="the spill layer needs the optional NumPy extra")
def test_outofcore_rss_ceiling_and_throughput(tmp_path):
    """Disk-backed exploration: same graph, frontier-sized resident set."""
    rows = []
    for mode in ("in-ram", "disk-backed"):
        row = _explore_in_subprocess(mode, tmp_path)
        row["states_per_sec"] = (row["states"] / row["seconds"]
                                 if row["seconds"] else 0.0)
        row["spill_write_mb"] = row.pop("spill_write_bytes") / 1e6
        row["spill_read_mb"] = row.pop("spill_read_bytes") / 1e6
        rows.append(row)
    print_table(
        "out-of-core exploration comparison (prefix-2 OPE, max_states={}, "
        "rss ceiling {} kB)".format(MAX_STATES, RSS_CEILING_KB), rows)
    by_mode = {row["mode"]: row for row in rows}
    ram, disk = by_mode["in-ram"], by_mode["disk-backed"]
    # Same exploration (the bit-level identity contract lives in
    # tests/test_storage.py; at bench scale the aggregate shape must agree).
    assert disk["states"] == ram["states"]
    assert disk["edges"] == ram["edges"]
    assert disk["levels"] == ram["levels"]
    assert disk["spill_write_mb"] > 0
    # The ceiling: the graph does not fit the budget in RAM, yet the
    # disk-backed engine explores it without ever holding it resident.
    assert ram["peak_rss_kb"] > RSS_CEILING_KB, ram
    assert disk["peak_rss_kb"] < RSS_CEILING_KB, disk
    # No spill files survive the children (unlinked at creation).
    leftovers = [name for name in os.listdir(str(tmp_path))
                 if name.startswith("repro-spill-")]
    assert leftovers == []
