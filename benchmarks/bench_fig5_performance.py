"""E3 / Fig. 5: performance analysis of a reconfigurable pipeline.

Regenerates the information the Workcraft performance pane shows: the
throughput of the slowest cycles and the bottleneck nodes of each, plus the
designer-facing optimisation suggestions (token insertion, buffering,
wagging).
"""

from repro.performance.analyzer import PerformanceAnalyzer
from repro.performance.optimization import suggest_optimisations
from repro.pipelines.generic import build_generic_pipeline

from .conftest import print_table


def _analyse():
    pipeline = build_generic_pipeline(4, static_prefix_stages=1, name="fig5_pipeline")
    return PerformanceAnalyzer(pipeline.dfs).analyse(slowest_count=5)


def test_fig5_performance_analysis(benchmark):
    report = _analyse()
    rows = []
    for metric in report.slowest:
        rows.append({
            "registers": metric.registers,
            "tokens": metric.tokens,
            "holes": metric.holes,
            "delay": metric.delay,
            "throughput": metric.throughput,
            "bottlenecks": ", ".join(report.bottlenecks.get(id(metric), [])),
        })
    print_table("Fig. 5 -- slowest cycles and bottleneck nodes", rows)

    # The pipeline's control loops are cycles and the tool reports them.
    assert report.cycles
    assert report.throughput is not None and report.throughput > 0
    # Every reported slow cycle names at least one bottleneck node.
    assert all(report.bottlenecks[id(metric)] for metric in report.slowest)

    suggestions = suggest_optimisations(report)
    print_table("Fig. 5 -- optimisation suggestions",
                [{"kind": s.kind, "message": s.message} for s in suggestions])
    assert suggestions

    benchmark(_analyse)
