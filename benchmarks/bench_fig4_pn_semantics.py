"""E2 / Fig. 3-4: Petri-net semantics of the motivating-example DFS.

Regenerates the statistics of the translation (places, transitions, read
arcs) and explores its full state space, checking the structural facts the
paper's figure shows: the control register is refined into mutually exclusive
``Mt``/``Mf`` transitions, the non-deterministic ``cond`` choice exists, and
the whole net is 1-safe and deadlock-free.  The property checks run through
a campaign :class:`~repro.campaign.jobs.VerificationJob` -- the same
picklable unit of work the parallel campaign engine schedules.
"""

from repro.campaign import VerificationJob
from repro.dfs.examples import conditional_comp_dfs
from repro.dfs.translation import to_petri_net
from repro.petri.net import ArcKind
from repro.petri.reachability import build_reachability_graph

from .conftest import print_table


def _build_and_explore():
    dfs = conditional_comp_dfs(comp_stages=1)
    net = to_petri_net(dfs)
    # The translation is 1-safe, so this resolves to the compiled bitmask
    # engine; the checks below hold identically on either backend.
    graph = build_reachability_graph(net)
    return dfs, net, graph


def _verify_job():
    """The Fig. 1b model verified as a (cache-keyed, picklable) campaign job."""
    job = VerificationJob(
        "fig4-conditional", "conditional", kwargs={"comp_stages": 1},
        properties=("safeness", "deadlock"))
    return job.run()


def test_fig4_petri_net_semantics(benchmark):
    dfs, net, graph = _build_and_explore()
    read_arcs = sum(1 for arc in net.arcs if arc.kind is ArcKind.READ)
    rows = [{
        "dfs_nodes": len(dfs.nodes),
        "pn_places": len(net.places),
        "pn_transitions": len(net.transitions),
        "read_arcs": read_arcs,
        "reachable_states": len(graph),
        "deadlocks": len(graph.deadlocks()),
    }]
    print_table("Fig. 4 -- Petri-net translation of the Fig. 1b DFS", rows)

    # The control register contributes the refined Mt/Mf transition pairs.
    for name in ("Mt_ctrl+", "Mf_ctrl+", "Mt_ctrl-", "Mf_ctrl-"):
        assert net.has_transition(name)
    # The True/False choice of cond is a reachable non-deterministic choice.
    both_enabled = graph.find(
        lambda m: net.is_enabled("Mt_ctrl+", m) and net.is_enabled("Mf_ctrl+", m))
    assert both_enabled is not None

    # Standard properties of the translation, checked through the campaign
    # job layer (identical verdicts to calling the Verifier directly).
    payload = _verify_job()
    verdict = payload["verdict"]
    assert verdict["passed"] is True
    assert verdict["state_count"] == len(graph)
    assert verdict["truncated"] is False
    assert all(record["holds"] is True for record in verdict["properties"])
    print_table("campaign-job verdict of the Fig. 1b DFS", [
        {"property": record["property"], "holds": record["holds"],
         "details": record["details"]} for record in verdict["properties"]])

    benchmark(_build_and_explore)
