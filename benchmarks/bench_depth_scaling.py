"""E8 / Section IV: linear scaling of time and energy with pipeline depth.

"All configurations of the reconfigurable pipeline (from 3 to 18 stages) were
exercised at 0.5-1.6 V.  The experiments showed that both the computation
time and the energy consumption increase linearly with the pipeline length;
the slope of increment is reverse-proportional to the supply voltage."
"""

import pytest

from repro.chip.testbench import depth_scaling_experiment

from .conftest import print_table

DEPTHS = list(range(3, 19))
VOLTAGES = (0.5, 0.8, 1.2, 1.6)
ITEMS = 16_000_000


def _slope(points):
    """Least-squares slope of (x, y) pairs."""
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in points)
    denominator = sum((x - mean_x) ** 2 for x, _ in points)
    return numerator / denominator


def test_depth_scaling_linear_and_voltage_dependent(benchmark):
    result = depth_scaling_experiment(depths=DEPTHS, voltages=VOLTAGES, items=ITEMS)
    rows = result["rows"]
    print_table("Section IV -- time/energy vs configured depth (16 M items)",
                rows[:8] + rows[-8:])

    time_slopes = {}
    for voltage in VOLTAGES:
        points = [(row["depth"], row["computation_time_s"])
                  for row in rows if row["voltage"] == voltage]
        energy_points = [(row["depth"], row["consumed_energy_j"])
                        for row in rows if row["voltage"] == voltage]
        # Linearity: consecutive increments are all equal.
        times = [y for _, y in points]
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert max(deltas) == pytest.approx(min(deltas), rel=1e-6)
        energies = [y for _, y in energy_points]
        energy_deltas = [b - a for a, b in zip(energies, energies[1:])]
        assert max(energy_deltas) == pytest.approx(min(energy_deltas), rel=1e-6)
        time_slopes[voltage] = _slope(points)

    print_table("Section IV -- time slope vs voltage",
                [{"voltage_V": v, "slope_s_per_stage": s} for v, s in sorted(time_slopes.items())])

    # The slope decreases monotonically with the supply voltage
    # ("reverse-proportional to the supply voltage").
    ordered = [time_slopes[v] for v in sorted(time_slopes)]
    assert ordered == sorted(ordered, reverse=True)
    assert time_slopes[0.5] > 5 * time_slopes[1.6]

    benchmark(lambda: depth_scaling_experiment(depths=[3, 10, 18], voltages=(1.2,),
                                               items=ITEMS))
