"""SMT tier cost profile: unroll encoding, structural proofs, IC3 at scale.

Three costs of the solver-backed proving stack, two of them solver-free so
the bench (and its regression gates) runs on every CI machine:

* **BMC unroll encoding** -- the pure-Python cost of producing the SMT-LIB
  text for a *k*-step unrolling of the motivating conditional example.
  The formula count is linear in *k*, so the depth-16/depth-4 seconds
  ratio is a stable scaling signal gated by ``check_regression.py``.
* **structural deadlock proof** -- the siphon/trap fallback of
  :func:`repro.petri.invariants.siphon_trap_certificate` proving
  deadlock-freedom *cold* (minimal-siphon enumeration included) against
  the exhaustive engine exploring the same net.  This is the no-solver
  answer of the proving tier, so its relative cost is gated too.
* **IC3 beyond the horizon** (z3 only) -- the acceptance scenario:
  a 2**21-state net whose exhaustive exploration is truncated three
  orders of magnitude below its state count, proved unbounded by the
  IC3 checker through the real solver.
"""

import time

import pytest

from repro.dfs.examples import conditional_comp_dfs, token_ring
from repro.dfs.translation import to_petri_net
from repro.petri.invariants import compute_semiflows, siphon_trap_certificate
from repro.petri.net import PetriNet
from repro.smt.encoder import SmtEncoder
from repro.smt.solver import solver_available
from repro.verification.checkers import (
    CheckerContext,
    DeadlockQuery,
    ReachQuery,
    create_checker,
)

from .conftest import print_table

#: Unrolling depths of the encoding bench; the gate divides the last two.
DEPTHS = (2, 4, 16)

#: Timed encoding repetitions (the minimum is reported): the per-depth
#: encoding cost is sub-millisecond, so single measurements are noise.
REPEATS = 5


def _unrolling(encoder, semiflows, depth):
    """All SMT-LIB lines of a *depth*-step BMC unrolling."""
    lines = list(encoder.declare_marking(0))
    lines += encoder.marking_bounds(0)
    lines.append(encoder.initial(0))
    lines += encoder.invariants(semiflows, 0)
    for step in range(depth):
        lines += encoder.declare_marking(step + 1)
        lines += encoder.declare_step(step)
        lines += encoder.marking_bounds(step + 1)
        lines += encoder.invariants(semiflows, step + 1)
        lines += encoder.step_formulas(step)
    return lines


def wide_rings(count):
    """*count* independent two-state cycles: 2**count reachable states."""
    net = PetriNet("wide_rings_{}".format(count))
    for i in range(count):
        names = {k: k + str(i) for k in ("a", "na", "b", "nb")}
        for key, tokens in (("a", 1), ("na", 0), ("b", 0), ("nb", 1)):
            net.add_place(names[key], tokens=tokens)
        ab, ba = "t_ab{}".format(i), "t_ba{}".format(i)
        net.add_transition(ab)
        net.add_transition(ba)
        for src, dst in ((names["a"], ab), ((names["nb"]), ab),
                         (ab, names["na"]), (ab, names["b"]),
                         (names["b"], ba), (names["na"], ba),
                         (ba, names["nb"]), (ba, names["a"])):
            net.add_arc(src, dst)
    return net


def test_bmc_unroll_encoding_latency():
    net = to_petri_net(conditional_comp_dfs(comp_stages=3))
    encoder = SmtEncoder(net, safe=True)
    semiflows = compute_semiflows(net)

    rows = []
    by_depth = {}
    for depth in DEPTHS:
        best = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            lines = _unrolling(encoder, semiflows, depth)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        by_depth[depth] = (best, lines)
        rows.append({
            "depth": "depth-{}".format(depth),
            "formulas": len(lines),
            "kchars": round(sum(len(line) for line in lines) / 1000, 1),
            "seconds": best,
        })
    print_table(
        "bmc unroll encoding ({} places, {} transitions)".format(
            len(net.places), len(net.transitions)), rows)

    # The encoding is linear in the depth: formula counts grow by a
    # constant per step, and no depth is quadratically more expensive.
    sizes = {depth: len(lines) for depth, (_, lines) in by_depth.items()}
    per_step = (sizes[16] - sizes[4]) / 12
    assert sizes[4] - sizes[2] == pytest.approx(2 * per_step)


def test_structural_deadlock_proof_vs_exhaustive():
    net = to_petri_net(token_ring(registers=6, tokens=1))

    start = time.perf_counter()
    certificate = siphon_trap_certificate(
        net, semiflows=compute_semiflows(net))
    structural = time.perf_counter() - start

    start = time.perf_counter()
    outcome = create_checker(
        "exhaustive", CheckerContext(net)).check(DeadlockQuery())
    exhaustive = time.perf_counter() - start

    verdicts = {True: "holds", False: "violated", None: "inconclusive"}
    print_table("structural deadlock proof (cold siphon/trap enumeration)", [
        {"method": "exhaustive", "seconds": exhaustive,
         "verdict": verdicts[outcome.holds], "scope": "explored states"},
        {"method": "siphon-trap", "seconds": structural,
         "verdict": verdicts[certificate["proved"] or None],
         "scope": "unbounded ({} siphons)".format(
             certificate.get("siphons", 0))},
    ])

    # Both conclude, and the structural proof covers *every* marking, not
    # just the explored ones.
    assert outcome.holds is True
    assert certificate["proved"]
    assert "(holds, unbounded)" in certificate["reason"]


@pytest.mark.skipif(not solver_available(),
                    reason="needs the z3 binary on PATH")
def test_ic3_proves_beyond_the_exhaustive_horizon():
    # 2**21 = 2,097,152 reachable states, explored with a 50k truncation
    # bound: the exhaustive engine shrugs, IC3 proves.
    net = wide_rings(21)
    context = CheckerContext(net, max_states=50000)
    query = ReachQuery('$"a0" & $"b0"')

    start = time.perf_counter()
    truncated = create_checker("exhaustive", context).check(query)
    exhaustive = time.perf_counter() - start

    start = time.perf_counter()
    proved = create_checker("ic3", context).check(query)
    ic3 = time.perf_counter() - start

    verdicts = {True: "holds", False: "violated", None: "inconclusive"}
    print_table("ic3 vs exhaustive beyond the horizon (2**21 states)", [
        {"checker": "exhaustive", "seconds": exhaustive,
         "verdict": verdicts[truncated.holds], "scope": "50k states"},
        {"checker": "ic3", "seconds": ic3,
         "verdict": verdicts[proved.holds], "scope": "unbounded"},
    ])

    assert truncated.holds is None
    assert proved.holds is True
    assert "holds, unbounded" in proved.details
