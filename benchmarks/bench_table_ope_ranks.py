"""E4 / Section III-A table: ordinal pattern encoding of the example stream.

Regenerates the worked example -- stream (3, 1, 4, 1, 5, 9, 2, 6), window
size 6 -- with both the behavioural model and the stage-level functional
pipeline, and checks the exact rank lists printed in the paper.
"""

from repro.ope.functional import OpePipelineFunctional
from repro.ope.reference import OpeReference, paper_example_table

from .conftest import print_table

STREAM = [3, 1, 4, 1, 5, 9, 2, 6]
WINDOW = 6

#: The table exactly as printed in Section III-A.
PAPER_ROWS = [
    (1, (3, 1, 4, 1, 5, 9), (3, 1, 4, 2, 5, 6)),
    (2, (1, 4, 1, 5, 9, 2), (1, 4, 2, 5, 6, 3)),
    (3, (4, 1, 5, 9, 2, 6), (3, 1, 4, 6, 2, 5)),
]


def test_table_ope_rank_lists(benchmark):
    rows = paper_example_table()
    print_table("Section III-A -- OPE rank lists (window size 6)", rows,
                columns=["index", "window", "rank_list"])

    assert [(r["index"], r["window"], r["rank_list"]) for r in rows] == PAPER_ROWS

    # The pipelined (hardware-style) computation produces the same rank lists.
    functional = OpePipelineFunctional(WINDOW).process(STREAM)
    assert functional == [list(ranks) for _, _, ranks in PAPER_ROWS]

    benchmark(lambda: OpeReference(WINDOW).encode(STREAM))
