"""E6 / Fig. 9a: computation time and energy versus supply voltage.

Regenerates the voltage-sweep characterisation of the 18-stage static and
reconfigurable OPE pipelines over a 16 M-item LFSR workload, normalised to
the static pipeline at the nominal 1.2 V (reference point 1.22 s, 2.74 mJ).
The assertions encode the paper's findings: lower voltage means slower but
more energy-efficient operation, the reconfigurable implementation pays about
5 % in energy and about 36 % in computation time, and the reference point is
reproduced by the calibrated model.
"""

import pytest

from repro.chip.testbench import voltage_sweep_experiment

from .conftest import print_table

VOLTAGES = (0.5, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6)
ITEMS = 16_000_000


def test_fig9a_voltage_sweep(benchmark):
    result = voltage_sweep_experiment(voltages=VOLTAGES, items=ITEMS)
    rows = [
        {
            "voltage_V": row["voltage"],
            "static_time_norm": row["static_time_norm"],
            "reconf_time_norm": row["reconfigurable_time_norm"],
            "static_energy_norm": row["static_energy_norm"],
            "reconf_energy_norm": row["reconfigurable_energy_norm"],
            "time_overhead_%": 100 * row["time_overhead"],
            "energy_overhead_%": 100 * row["energy_overhead"],
        }
        for row in result["rows"]
    ]
    print("reference (static @ 1.2 V, 16 M items): {:.3g} s, {:.3g} mJ".format(
        result["reference_time_s"], result["reference_energy_j"] * 1e3))
    print_table("Fig. 9a -- time and energy vs supply voltage (normalised)", rows)

    # The reference point matches the paper's measurement.
    assert result["reference_time_s"] == pytest.approx(1.22, rel=0.02)
    assert result["reference_energy_j"] == pytest.approx(2.74e-3, rel=0.02)

    # Monotone trends: lower voltage -> slower but more energy-efficient.
    times = [row["static_time_norm"] for row in rows]
    energies = [row["static_energy_norm"] for row in rows]
    assert times == sorted(times, reverse=True)
    assert energies == sorted(energies)

    # Reconfigurability costs ~5 % energy and ~36 % time at every voltage.
    for row in rows:
        assert row["energy_overhead_%"] == pytest.approx(5.0, abs=1.0)
        assert row["time_overhead_%"] == pytest.approx(36.0, abs=3.0)

    benchmark(lambda: voltage_sweep_experiment(voltages=(0.5, 1.2, 1.6), items=ITEMS))
