"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints its rows (run pytest with ``-s`` to see them); the assertions encode
the *shape* of the paper's results (who wins, by roughly what factor, where
the crossovers are), not the absolute silicon numbers.
"""


def print_table(title, rows, columns=None):
    """Print a list of row dictionaries as an aligned text table."""
    print("\n== {} ==".format(title))
    if not rows:
        print("(no rows)")
        return
    columns = columns or list(rows[0].keys())
    widths = {column: max(len(str(column)),
                          max(len(_format(row.get(column))) for row in rows))
              for column in columns}
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_format(row.get(column)).ljust(widths[column]) for column in columns))


def _format(value):
    if isinstance(value, float):
        return "{:.4g}".format(value)
    return str(value)
