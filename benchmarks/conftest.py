"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints its rows (run pytest with ``-s`` to see them); the assertions encode
the *shape* of the paper's results (who wins, by roughly what factor, where
the crossovers are), not the absolute silicon numbers.

Machine-readable results
------------------------

Passing ``--json DIR`` (or setting the ``BENCH_JSON`` environment variable)
makes the session write one ``BENCH_<name>.json`` per benchmark module into
*DIR*, containing every table the module printed (timings, state counts,
speedups -- whatever the rows held) plus per-test call durations.  CI
uploads these files as artifacts and feeds them to
``benchmarks/check_regression.py``.
"""

import json
import os
import sys

#: module name -> list of {"title": ..., "rows": [...]} in print order.
_TABLES = {}
#: module name -> {test name: call duration in seconds}.
_DURATIONS = {}


def _caller_module(depth=2):
    """Best-effort name of the benchmark module calling :func:`print_table`."""
    frame = sys._getframe(depth)
    name = frame.f_globals.get("__name__", "unknown")
    return name.rpartition(".")[2]


def print_table(title, rows, columns=None):
    """Print a list of row dictionaries as an aligned text table.

    The table is also recorded for the ``--json`` / ``BENCH_JSON`` report of
    the calling benchmark module.
    """
    _TABLES.setdefault(_caller_module(), []).append(
        {"title": title, "rows": [dict(row) for row in rows]})
    print("\n== {} ==".format(title))
    if not rows:
        print("(no rows)")
        return
    columns = columns or list(rows[0].keys())
    widths = {column: max(len(str(column)),
                          max(len(_format(row.get(column))) for row in rows))
              for column in columns}
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_format(row.get(column)).ljust(widths[column]) for column in columns))


def _format(value):
    if isinstance(value, float):
        return "{:.4g}".format(value)
    return str(value)


# -- machine-readable session report ----------------------------------------


def pytest_addoption(parser):
    group = parser.getgroup("bench")
    group.addoption(
        "--json", dest="bench_json", default=os.environ.get("BENCH_JSON"),
        metavar="DIR",
        help="write BENCH_<name>.json files (tables + durations) into DIR "
             "(also honoured from the BENCH_JSON environment variable)")


def _module_of(nodeid):
    path = nodeid.split("::", 1)[0]
    return os.path.splitext(os.path.basename(path))[0]


def pytest_runtest_logreport(report):
    if report.when != "call":
        return
    module = _module_of(report.nodeid)
    if not module.startswith("bench"):
        return
    test = report.nodeid.rpartition("::")[2]
    _DURATIONS.setdefault(module, {})[test] = report.duration


def pytest_sessionfinish(session):
    directory = session.config.getoption("bench_json", default=None)
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    for module in sorted(set(_TABLES) | set(_DURATIONS)):
        payload = {
            "bench": module,
            "tables": _TABLES.get(module, []),
            "durations": _DURATIONS.get(module, {}),
        }
        path = os.path.join(directory, "BENCH_{}.json".format(module))
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
