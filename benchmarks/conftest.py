"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints its rows (run pytest with ``-s`` to see them); the assertions encode
the *shape* of the paper's results (who wins, by roughly what factor, where
the crossovers are), not the absolute silicon numbers.

Machine-readable results
------------------------

Passing ``--json DIR`` (or setting the ``BENCH_JSON`` environment variable)
makes the session write one ``BENCH_<name>.json`` per benchmark module into
*DIR*, containing every table the module printed (timings, state counts,
speedups -- whatever the rows held) plus per-test call durations and the
session's resource footprint (``peak_rss_kb``).  Exploration benches report
throughput through :func:`throughput_metrics` (states/sec and peak RSS
amortised per state).  CI uploads these files as artifacts and feeds them
to ``benchmarks/check_regression.py``.
"""

import json
import os
import sys

try:
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None

#: module name -> list of {"title": ..., "rows": [...]} in print order.
_TABLES = {}
#: module name -> {test name: call duration in seconds}.
_DURATIONS = {}


def _caller_module(depth=2):
    """Best-effort name of the benchmark module calling :func:`print_table`."""
    frame = sys._getframe(depth)
    name = frame.f_globals.get("__name__", "unknown")
    return name.rpartition(".")[2]


def print_table(title, rows, columns=None):
    """Print a list of row dictionaries as an aligned text table.

    The table is also recorded for the ``--json`` / ``BENCH_JSON`` report of
    the calling benchmark module.
    """
    _TABLES.setdefault(_caller_module(), []).append(
        {"title": title, "rows": [dict(row) for row in rows]})
    print("\n== {} ==".format(title))
    if not rows:
        print("(no rows)")
        return
    columns = columns or list(rows[0].keys())
    widths = {column: max(len(str(column)),
                          max(len(_format(row.get(column))) for row in rows))
              for column in columns}
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_format(row.get(column)).ljust(widths[column]) for column in columns))


def _format(value):
    if isinstance(value, float):
        return "{:.4g}".format(value)
    return str(value)


def peak_rss_kb():
    """Peak resident-set size of this process in KiB (0 when unavailable)."""
    if resource is None:
        return 0
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        peak //= 1024  # ru_maxrss is bytes on macOS, KiB elsewhere
    return peak


def graph_bytes(graph):
    """Resident bytes of a reachability graph's core storage.

    Columnar graphs (``repro.petri.batch``) report the exact ``nbytes`` of
    their arrays; list-based compiled graphs sum ``sys.getsizeof`` over the
    state/edge/parent structures.  Unlike peak RSS (a process-wide
    monotonic high-water mark), this is a per-graph measure, so the
    sequential and batch rows of one bench genuinely differ by the
    columnar storage win.
    """
    arrays = [getattr(graph, name, None)
              for name in ("_words", "_edge_data", "_edge_offsets",
                           "_parents_arr", "_frontier_arr",
                           "_hash_keys", "_hash_idx")]
    if arrays[0] is not None:
        return sum(array.nbytes for array in arrays if array is not None)
    states = graph._mask_states
    edges = graph._mask_edges
    parents = graph._parents
    total = (sys.getsizeof(states) + sys.getsizeof(edges)
             + sys.getsizeof(parents))
    total += sum(sys.getsizeof(state) for state in states)
    total += sum(sys.getsizeof(edge_list)
                 + sum(sys.getsizeof(edge) for edge in edge_list)
                 for edge_list in edges)
    total += sum(sys.getsizeof(parent) for parent in parents
                 if parent is not None)
    return total


def throughput_metrics(states, seconds, graph=None):
    """Throughput/memory columns shared by the exploration benches.

    ``states_per_sec`` is the wall-clock exploration rate; with *graph*
    given, ``graph_bytes_per_state`` amortises the graph's core storage
    (:func:`graph_bytes`) over its states -- the per-state memory the
    columnar storage is meant to cut.  The session-wide peak RSS lands in
    the BENCH JSON as ``peak_rss_kb``.
    """
    metrics = {"states_per_sec": states / seconds if seconds else 0.0}
    if graph is not None and states:
        metrics["graph_bytes_per_state"] = graph_bytes(graph) / states
    return metrics


# -- machine-readable session report ----------------------------------------


def pytest_addoption(parser):
    group = parser.getgroup("bench")
    group.addoption(
        "--json", dest="bench_json", default=os.environ.get("BENCH_JSON"),
        metavar="DIR",
        help="write BENCH_<name>.json files (tables + durations) into DIR "
             "(also honoured from the BENCH_JSON environment variable)")


def _module_of(nodeid):
    path = nodeid.split("::", 1)[0]
    return os.path.splitext(os.path.basename(path))[0]


def pytest_runtest_logreport(report):
    if report.when != "call":
        return
    module = _module_of(report.nodeid)
    if not module.startswith("bench"):
        return
    test = report.nodeid.rpartition("::")[2]
    _DURATIONS.setdefault(module, {})[test] = report.duration


def pytest_sessionfinish(session):
    directory = session.config.getoption("bench_json", default=None)
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    for module in sorted(set(_TABLES) | set(_DURATIONS)):
        payload = {
            "bench": module,
            "tables": _TABLES.get(module, []),
            "durations": _DURATIONS.get(module, {}),
            "peak_rss_kb": peak_rss_kb(),
        }
        path = os.path.join(directory, "BENCH_{}.json".format(module))
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
