"""Crash-safe exploration: the overhead of per-level checkpointing.

`build_reachability_graph(resume=...)` makes the batch engine keep its
columnar stores at named paths and commit a small chained-CRC manifest
after every BFS level, so a run killed mid-level resumes from the last
complete level (see ``tests/test_recovery.py`` for the kill/resume
proofs).  Durability has a price -- one manifest write + fsync per level
plus named (not unlinked) store files -- and this bench pins it: the same
truncated prefix-2 OPE exploration runs with and without a checkpoint
directory in the same process, and the checkpointed/no-checkpoint
seconds ratio is gated against the committed baseline by
``check_regression.py``.

The decomposed cost on a 1-core dev box (~50 levels, ~40 MB of graph):
~15% for the named disk-backed stores themselves (the out-of-core
price -- every row now goes through a memmap page instead of a RAM
array), ~5% for the chained CRCs, and the rest for the per-level syncs
(range ``msync`` of each store's appended pages, manifest fsync +
directory fsync), for a measured total of ~1.4-1.6x.
:data:`OVERHEAD_CEILING` asserts the absolute shape on every run:
durability must stay a bounded surcharge, never a second exploration;
the regression gate catches the *ratio* creeping beyond run-to-run
noise.
"""

import os
import time

import pytest

from repro.campaign.jobs import build_pipeline_model
from repro.dfs.translation import to_petri_net
from repro.petri.batch import numpy_available
from repro.petri.reachability import build_reachability_graph

from .conftest import print_table, throughput_metrics

#: Exploration bound: deep enough for a real level count (the per-level
#: manifest is the cost being measured), small enough for bench budgets.
MAX_STATES = 200000

#: Absolute ceiling on the checkpointed/no-checkpoint seconds ratio.
OVERHEAD_CEILING = 1.80


@pytest.mark.skipif(not numpy_available(),
                    reason="checkpointed exploration needs NumPy")
def test_checkpoint_overhead_is_bounded(tmp_path):
    """Per-level durability must stay a surcharge, not a second run."""
    net = to_petri_net(build_pipeline_model(4, static_prefix=2))
    rows = []
    graphs = {}
    for mode in ("no-checkpoint", "checkpointed"):
        checkpoint = str(tmp_path / "ckpt") if mode == "checkpointed" else None
        # Best of two: a transient load spike on a shared runner must not
        # masquerade as a durability regression.  A completed run discards
        # its checkpoint, so the second checkpointed run starts fresh too.
        seconds = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            graph = build_reachability_graph(net, engine="batch",
                                             max_states=MAX_STATES,
                                             resume=checkpoint)
            seconds = min(seconds, time.perf_counter() - started)
        stats = graph.exploration_stats
        row = {"mode": mode, "states": len(graph), "edges": stats["edges"],
               "levels": stats["levels"], "seconds": seconds}
        row.update(throughput_metrics(len(graph), seconds))
        rows.append(row)
        graphs[mode] = graph
    print_table(
        "checkpointed exploration comparison (prefix-2 OPE, max_states={}, "
        "overhead ceiling {:.0%})".format(MAX_STATES, OVERHEAD_CEILING - 1),
        rows)
    plain, durable = rows
    # Same exploration either way (the bit-level identity proofs live in
    # tests/test_recovery.py; here the aggregate shape must agree).
    assert durable["states"] == plain["states"]
    assert durable["edges"] == plain["edges"]
    assert durable["levels"] == plain["levels"]
    for name in ("_words", "_edge_data", "_edge_offsets", "_parents_arr",
                 "_frontier_arr"):
        reference = getattr(graphs["no-checkpoint"], name)
        assert getattr(graphs["checkpointed"], name).tobytes() == \
            reference.tobytes()
    # A completed run leaves nothing behind to clean up.
    assert os.listdir(str(tmp_path / "ckpt")) == []
    # The absolute overhead ceiling.
    ratio = durable["seconds"] / plain["seconds"]
    assert ratio < OVERHEAD_CEILING, (
        "checkpointing cost {:.1%} over the plain exploration".format(
            ratio - 1))
