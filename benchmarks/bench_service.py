"""The serving stack: submit latency, warm-key reuse, coalesced bursts.

Three serving claims are measured (and the reuse ratio gated) here:

* **Warm-key reuse**: a submission whose content key (canonical net
  fingerprint + options digest) is already in the tenant's verdict cache
  is answered synchronously at submit time -- no worker dispatch, no
  re-verification.  The warm/cold latency ratio is gated by
  ``check_regression.py``: warm submissions regressing toward cold cost
  means the content-addressed reuse path broke.
* **Single-flight coalescing**: a burst of concurrent identical
  submissions is served by exactly one pool execution; the table reports
  the burst's wall clock next to the single execution it rode on, and the
  bench asserts the coalescing actually happened.
* **HTTP round trip**: the same submit -> poll -> report cycle through a
  real socket and the stdlib client, so the daemon's framing overhead
  stays visible.
"""

import asyncio
import threading
import time

from repro.campaign.jobs import VerificationJob
from repro.service import ServiceClient, ServiceDaemon, VerificationService

from .conftest import print_table

#: Submissions in the warm-latency average and in the coalesced burst.
WARM_ROUNDS = 20
BURST = 16


def _job(job_id):
    return VerificationJob(job_id, "conditional", kwargs={"comp_stages": 2},
                           properties=("safeness", "deadlock"))


class _DaemonThread:
    """Run a ServiceDaemon on an ephemeral port in a background thread."""

    def __init__(self, service):
        self.service = service
        self.daemon = None
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.daemon = ServiceDaemon(self.service, port=0)
            await self.daemon.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.daemon.stop()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "daemon failed to start"
        return self.daemon

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)
        self.service.close()


def test_submit_latency_cold_vs_warm_gated(tmp_path):
    """Cold pool execution vs synchronous warm-key answers (gated ratio)."""
    service = VerificationService(parallelism=1,
                                  cache_dir=str(tmp_path / "cache"))
    try:
        start = time.perf_counter()
        ticket = service.submit(_job("cold"))
        cold_result = ticket.wait(120)
        cold_seconds = time.perf_counter() - start
        assert cold_result.status == "ok"
        assert cold_result.cache_status == "miss"

        start = time.perf_counter()
        for index in range(WARM_ROUNDS):
            ticket = service.submit(_job("warm-{}".format(index)))
            assert ticket.done, "a warm key must be answered at submit time"
            assert ticket.result.cache_status == "hit"
        warm_seconds = (time.perf_counter() - start) / WARM_ROUNDS
        assert ticket.result.verdict == cold_result.verdict
    finally:
        service.close()
    rows = [
        {"mode": "cold (pool execution)", "submissions": 1,
         "seconds": cold_seconds, "speedup": 1.0},
        {"mode": "warm (content-key hit)", "submissions": WARM_ROUNDS,
         "seconds": warm_seconds, "speedup": cold_seconds / warm_seconds},
    ]
    print_table("service result reuse, cold vs warm (conditional x2)", rows)
    # The warm path must clearly undercut a pool execution; the exact ratio
    # is gated against the committed baseline by check_regression.py.
    assert warm_seconds < cold_seconds


def test_coalesced_burst_executes_once(tmp_path):
    """A concurrent burst of one identical job costs one pool execution."""
    service = VerificationService(parallelism=2,
                                  cache_dir=str(tmp_path / "cache"))
    try:
        tickets = [None] * BURST

        def submit(index):
            tickets[index] = service.submit(_job("burst-{}".format(index)),
                                            tenant="burst")

        threads = [threading.Thread(target=submit, args=(index,))
                   for index in range(BURST)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        results = [ticket.wait(120) for ticket in tickets]
        burst_seconds = time.perf_counter() - start
        stats = service.stats()
    finally:
        service.close()
    assert all(result.status == "ok" for result in results)
    caches = [result.cache_status for result in results]
    executions = caches.count("miss")
    assert executions == 1, caches
    rows = [{
        "burst": BURST,
        "pool_executions": executions,
        "coalesced": stats["coalesced"],
        "cache_hits": stats["cache_hits"],
        "seconds": burst_seconds,
        "jobs_per_sec": BURST / burst_seconds,
    }]
    print_table("coalesced burst ({} identical submissions)".format(BURST),
                rows)


def test_http_round_trip(tmp_path):
    """Submit -> poll -> report through a real socket with the stdlib client."""
    service = VerificationService(parallelism=1,
                                  cache_dir=str(tmp_path / "cache"))
    rows = []
    with _DaemonThread(service) as daemon:
        client = ServiceClient(daemon.address, tenant="bench")
        start = time.perf_counter()
        ticket = client.submit(_job("http-cold"))
        record = client.wait(ticket["id"], timeout=120.0)
        report = client.report(ticket["id"])
        cold_seconds = time.perf_counter() - start
        assert record["result"]["cache"] == "miss"
        assert report["summary"]["ok"] is True
        rows.append({"mode": "http-cold", "requests": 3,
                     "seconds": cold_seconds})

        start = time.perf_counter()
        for index in range(WARM_ROUNDS):
            warm = client.submit(_job("http-warm-{}".format(index)))
            assert warm["status"] == "done"
            assert warm["result"]["cache"] == "hit"
        warm_seconds = (time.perf_counter() - start) / WARM_ROUNDS
        rows.append({"mode": "http-warm", "requests": 1,
                     "seconds": warm_seconds})
    print_table("service HTTP round trip (stdlib client)", rows)
    assert warm_seconds < cold_seconds
