"""The parallel verification path: batch engine, sharded BFS, racing, caches.

Four claims of the parallel/array-native engine work are measured and gated
here:

* **Whole-frontier batch exploration** (the NumPy engine of
  :mod:`repro.petri.batch`) produces a graph bit-identical to the
  sequential compiled engine while expanding entire BFS levels per step --
  the committed baseline records the speedup over the pure-int engine on
  the 300k-state 4-stage exploration (>= 3x against the PR-4 2.67s
  reference), with states/sec and per-state RSS in the BENCH JSON.
  ``check_regression.py`` gates the batch/sequential ratio, so a >30%
  throughput regression of the batch path fails CI.
* **Sharded exploration** produces a graph bit-identical to the sequential
  compiled engine while spreading the firing/dedup work across worker
  processes.  The wall-clock ratio is machine-dependent -- on a single-core
  runner the sharded engine pays its coordination overhead with no cores to
  win back, which the ``cores`` column makes explicit; on >= 4 cores it is
  expected to finish at least ~2x ahead of sequential on multi-million-state
  workloads (run with ``REPRO_BENCH_FULL=1`` for the full-size measurement).
  The requester-side resolution memo's hit rate is reported alongside.
* **Racing portfolios** answer beyond-horizon queries with the same verdict
  as the budgeted rotation while cancelling the losing engines mid-flight.
* **The semiflow cache** makes warm inductive sweeps near-free: a warm hit
  re-reads the Farkas basis bit-identically from disk instead of re-deriving
  it.  The warm/cold ratio is gated too.
"""

import os
import time

import pytest

from repro.campaign.jobs import build_pipeline_model
from repro.dfs.examples import token_ring
from repro.dfs.translation import to_petri_net
from repro.parallel.sharded import explore_sharded
from repro.petri.batch import explore_batch, numpy_available
from repro.petri.compiled import CompiledNet, explore_compiled
from repro.petri.invariants import SemiflowCache, compute_semiflows_cached
from repro.verification.verifier import Verifier

from .conftest import print_table, throughput_metrics

#: Exploration bound of the always-on sharded comparison (the full-size
#: acceptance measurement, REPRO_BENCH_FULL=1, explores 2M states instead).
HORIZON = 200000
FULL_HORIZON = 2000000


def _compiled_pipeline():
    dfs = build_pipeline_model(4, static_prefix=1)
    return CompiledNet.compile(to_petri_net(dfs))


def _assert_identical(sequential, sharded):
    assert sharded._mask_states == sequential._mask_states
    assert sharded._mask_edges == sequential._mask_edges
    assert sharded._frontier_indices == sequential._frontier_indices
    assert sharded.truncated == sequential.truncated
    assert sharded.deadlocks() == sequential.deadlocks()


def _sharded_rows(compiled, max_states):
    cores = os.cpu_count() or 1
    start = time.perf_counter()
    sequential = explore_compiled(compiled, max_states=max_states)
    sequential_seconds = time.perf_counter() - start
    rows = [dict({
        "mode": "sequential", "states": len(sequential),
        "edges": sequential.edge_count(), "cores": cores,
        "seconds": sequential_seconds, "speedup": 1.0,
    }, **throughput_metrics(len(sequential), sequential_seconds))]
    for workers in (2, 4):
        start = time.perf_counter()
        sharded = explore_sharded(compiled, max_states=max_states,
                                  workers=workers)
        seconds = time.perf_counter() - start
        _assert_identical(sequential, sharded)
        rows.append(dict({
            "mode": "sharded-{}".format(workers), "states": len(sharded),
            "edges": sharded.edge_count(), "cores": cores,
            "seconds": seconds, "speedup": sequential_seconds / seconds,
        }, **throughput_metrics(len(sharded), seconds)))
        del sharded
    return rows


#: The acceptance horizon of the batch-engine comparison: the 300k-state
#: 4-stage exploration the PR-4 baseline clocked at 2.67s sequential.
BATCH_HORIZON = 300000


@pytest.mark.skipif(not numpy_available(),
                    reason="the batch engine needs the optional NumPy extra")
def test_batch_exploration_bit_identical_and_gated():
    """Whole-frontier batch expansion vs the per-transition compiled loop."""
    compiled = _compiled_pipeline()
    start = time.perf_counter()
    sequential = explore_compiled(compiled, max_states=BATCH_HORIZON)
    sequential_seconds = time.perf_counter() - start
    # Best of two: the first batch run pays NumPy's lazy-init warmup.
    batch_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        batch = explore_batch(compiled, max_states=BATCH_HORIZON)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)
    assert batch._mask_states == sequential._mask_states
    assert batch._mask_edges == sequential._mask_edges
    assert batch._parents == sequential._parents
    assert batch._frontier_indices == sequential._frontier_indices
    assert batch.truncated == sequential.truncated
    rows = [
        dict({"engine": "sequential", "states": len(sequential),
              "edges": sequential.edge_count(), "seconds": sequential_seconds,
              "speedup": 1.0},
             **throughput_metrics(len(sequential), sequential_seconds,
                                  graph=sequential)),
        dict({"engine": "batch", "states": len(batch),
              "edges": batch.edge_count(), "seconds": batch_seconds,
              "speedup": sequential_seconds / batch_seconds},
             **throughput_metrics(len(batch), batch_seconds, graph=batch)),
    ]
    print_table(
        "batch exploration comparison (4-stage OPE, max_states={})".format(
            BATCH_HORIZON), rows)
    # The batch engine must beat the per-transition loop outright on this
    # workload; the exact ratio is gated by check_regression.py against the
    # committed baseline (>=3x vs the PR-4 2.67s sequential reference).
    assert batch_seconds < sequential_seconds


def test_sharded_exploration_bit_identical_and_gated():
    compiled = _compiled_pipeline()
    rows = _sharded_rows(compiled, HORIZON)
    print_table(
        "sharded exploration comparison (4-stage OPE, max_states={})".format(
            HORIZON), rows)
    # Identity is asserted inside _sharded_rows; the wall-clock ratio is
    # gated against the committed baseline by check_regression.py (absolute
    # speedup is a property of the runner's core count, not of the code).


def test_exchange_memo_hit_rate():
    """The requester-side memo answers cross-level re-references locally."""
    compiled = CompiledNet.compile(
        to_petri_net(token_ring(registers=6, tokens=2)))
    sequential = explore_compiled(compiled)
    rows = []
    graphs = {}
    for label, memo_size in (("memo-off", 0), ("memo-on", None)):
        start = time.perf_counter()
        sharded = explore_sharded(compiled, workers=3, memo_size=memo_size)
        seconds = time.perf_counter() - start
        stats = sharded.exchange_stats
        graphs[label] = sharded
        rows.append({
            "mode": label,
            "foreign_refs": stats["foreign_refs"],
            "memo_hits": stats["memo_hits"],
            "hit_rate": (stats["memo_hits"] / stats["foreign_refs"]
                         if stats["foreign_refs"] else 0.0),
            "chunk_messages": stats["chunk_messages"],
            "seconds": seconds,
        })
    print_table("sharded exchange memo (6-register ring, 2 tokens)", rows)
    for label, sharded in graphs.items():
        assert sharded._mask_states == sequential._mask_states, label
        assert sharded._mask_edges == sequential._mask_edges, label
    by_mode = {row["mode"]: row for row in rows}
    assert by_mode["memo-off"]["memo_hits"] == 0
    assert by_mode["memo-on"]["memo_hits"] > 0
    # A hit is an exchange record that never crossed a pipe.
    assert by_mode["memo-on"]["foreign_refs"] == \
        by_mode["memo-off"]["foreign_refs"]


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_FULL"),
    reason="full-size acceptance run; set REPRO_BENCH_FULL=1 (needs >= 4 "
           "cores to demonstrate the speedup)")
def test_sharded_speedup_full_size():
    """>= 2x at 4 workers on the >2M-state exploration (4+ core machines)."""
    compiled = _compiled_pipeline()
    rows = _sharded_rows(compiled, FULL_HORIZON)
    print_table(
        "sharded exploration, full size (4-stage OPE, max_states={})".format(
            FULL_HORIZON), rows)
    by_mode = {row["mode"]: row for row in rows}
    if (os.cpu_count() or 1) >= 4:
        assert by_mode["sharded-4"]["speedup"] >= 2.0


def test_portfolio_racing_consistent_and_cancels():
    holey = build_pipeline_model(4, static_prefix=1, holes=[3])
    rows = []
    results = {}
    for label, options in (
            ("rotation", {}),
            ("racing", {"portfolio": {"race": True}})):
        start = time.perf_counter()
        result = Verifier(holey, max_states=50000, checker="portfolio",
                          checker_options=options).verify_deadlock_freedom()
        results[label] = result
        rows.append({
            "mode": label, "verdict": {True: "holds", False: "violated",
                                       None: "inconclusive"}[result.holds],
            "method": result.method or "-",
            "seconds": time.perf_counter() - start,
        })
    print_table("portfolio racing vs rotation (ope4s hole@3, deadlock)", rows)
    # First-conclusive-verdict semantics must agree between the modes; the
    # racing run additionally reports the losers' fate.
    assert results["rotation"].holds is False
    assert results["racing"].holds is False
    assert "won the race" in results["racing"].details


def test_semiflow_cache_warm_vs_cold(tmp_path, benchmark):
    net = to_petri_net(build_pipeline_model(4, static_prefix=1))
    cache = SemiflowCache(str(tmp_path))
    start = time.perf_counter()
    cold = compute_semiflows_cached(net, cache=cache)
    cold_seconds = time.perf_counter() - start
    # Aggregate several warm hits: a single disk read is microseconds.
    start = time.perf_counter()
    for _ in range(5):
        warm = compute_semiflows_cached(net, cache=cache)
    warm_seconds = (time.perf_counter() - start) / 5
    assert warm == cold  # bit-identical basis
    rows = [
        {"mode": "cold (Farkas derivation)", "semiflows": len(cold),
         "seconds": cold_seconds},
        {"mode": "warm (fingerprint cache)", "semiflows": len(warm),
         "seconds": warm_seconds},
        {"mode": "speedup", "semiflows": "-",
         "seconds": cold_seconds / warm_seconds},
    ]
    print_table("semiflow cache, cold vs warm (4-stage OPE)", rows)
    assert cold_seconds / warm_seconds >= 10.0

    benchmark(lambda: compute_semiflows_cached(net, cache=cache))
