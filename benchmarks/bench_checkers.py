"""Checker portfolio: conclusive verdicts beyond the truncation horizon.

The pre-refactor verification path had exactly one answer for a state space
larger than ``max_states``: "inconclusive (truncated)".  This bench runs the
acceptance scenario of the pluggable-checker refactor on a 4-stage OPE
pipeline whose reachable state space (>2M states) exceeds the exploration
bound many times over:

* the **inductive** checker proves 1-safeness and token-value exclusion
  conclusively, from place invariants alone, without building any state
  space;
* the **walk** checker finds the injected-hole deadlock (the paper's
  Section III-A bug class) tens of firings deep, where breadth-first
  exploration drowns;
* the **portfolio** checker delivers both through one interface, and its
  overhead over the plain exhaustive engine in the *conclusive* regime is
  the metric gated by ``benchmarks/check_regression.py``.

Campaign cache keys include the checker choice, so verdicts produced by
different checkers never shadow each other on disk.
"""

import time

from repro.campaign import ScenarioSpec, generate_scenarios, options_digest
from repro.campaign.jobs import build_pipeline_model
from repro.verification.verifier import Verifier

from .conftest import print_table

#: Exploration bound of the bench: far below the 4-stage pipeline's >2M states.
HORIZON = 50000


def _timed_battery(dfs, checker, properties, max_states=HORIZON):
    start = time.perf_counter()
    summary = Verifier(dfs, max_states=max_states,
                       checker=checker).verify_properties(properties)
    return summary, time.perf_counter() - start


def test_conclusive_verdicts_beyond_the_truncation_horizon():
    clean = build_pipeline_model(4, static_prefix=1)
    holey = build_pipeline_model(4, static_prefix=1, holes=[3])

    rows = []
    verdict_label = {True: "holds", False: "violated", None: "inconclusive"}
    by_checker = {}
    for checker in ("exhaustive", "inductive", "portfolio"):
        summary, seconds = _timed_battery(clean, checker,
                                          ("safeness", "exclusion"))
        by_checker[checker] = summary
        for result in summary.results:
            rows.append({
                "model": "ope4s clean", "checker": checker,
                "property": result.property_name,
                "verdict": verdict_label[result.holds],
                "method": result.method or "-",
                "states": summary.state_count, "seconds": seconds,
            })
    deadlock_by_checker = {}
    for checker in ("exhaustive", "walk", "portfolio"):
        start = time.perf_counter()
        result = Verifier(holey, max_states=HORIZON,
                          checker=checker).verify_deadlock_freedom()
        seconds = time.perf_counter() - start
        deadlock_by_checker[checker] = result
        rows.append({
            "model": "ope4s hole@3", "checker": checker,
            "property": result.property_name,
            "verdict": verdict_label[result.holds],
            "method": result.method or "-",
            "states": "-", "seconds": seconds,
        })
    print_table(
        "checker conclusiveness beyond the truncation horizon "
        "(4-stage OPE, max_states={})".format(HORIZON), rows)

    # The pre-refactor answer: exhaustive truncates and shrugs.
    assert by_checker["exhaustive"].truncated
    assert all(result.holds is None
               for result in by_checker["exhaustive"].results)
    assert deadlock_by_checker["exhaustive"].holds is None

    # The refactor's point: conclusive verdicts with no state-space bound.
    for checker in ("inductive", "portfolio"):
        assert all(result.holds is True
                   for result in by_checker[checker].results)
        assert all(result.method == "inductive"
                   for result in by_checker[checker].results)
        assert by_checker[checker].state_count == 0
    for checker in ("walk", "portfolio"):
        result = deadlock_by_checker[checker]
        assert result.holds is False
        assert result.method == "walk"
        assert result.witnesses[0]["trace"]


def _time_checkers_conclusive_regime():
    """Time the verify battery on both paths where both are conclusive.

    Each sample times *three* full batteries on fresh verifiers, and the
    reported number is the best of five samples: the single-battery times
    are only tens of milliseconds, and the CI regression gate divides two
    of them, so the measurement needs this aggregation to keep run-to-run
    scheduler noise well inside the gate's tolerance.
    """
    timings = {}
    for checker in ("exhaustive", "portfolio"):
        best = float("inf")
        for _ in range(5):
            verifiers = []
            for _ in range(3):
                pipeline = build_pipeline_model(2, static_prefix=1)
                verifier = Verifier(pipeline, max_states=HORIZON,
                                    checker=checker)
                verifier.net  # translate up front
                verifiers.append(verifier)
            start = time.perf_counter()
            for verifier in verifiers:
                summary = verifier.verify_properties(
                    ("safeness", "deadlock", "mismatch", "exclusion"))
                assert summary.passed
            best = min(best, time.perf_counter() - start)
        timings[checker] = best
    return timings


def test_portfolio_overhead_in_the_conclusive_regime(benchmark):
    timings = _time_checkers_conclusive_regime()
    ratio = timings["portfolio"] / timings["exhaustive"]
    print_table("checker portfolio comparison (verify battery, 2-stage OPE)", [
        {"checker": "exhaustive (graph scan)", "seconds": timings["exhaustive"]},
        {"checker": "portfolio (inductive+walk+exhaustive)",
         "seconds": timings["portfolio"]},
        {"checker": "ratio", "seconds": ratio},
    ])
    # The portfolio spends extra work (invariants, walk budget) to buy
    # conclusiveness beyond the horizon; in the conclusive regime that
    # overhead must stay bounded.  check_regression.py gates drift of this
    # ratio against the committed baseline.
    assert ratio < 20.0

    benchmark(lambda: _timed_battery(
        build_pipeline_model(2, static_prefix=1), "portfolio",
        ("safeness", "deadlock", "mismatch", "exclusion")))


def test_portfolio_campaign_with_checker_aware_cache_keys():
    spec = ScenarioSpec(depths=(4,), holes=(0, 1), max_states=HORIZON,
                        properties=("safeness", "deadlock", "exclusion"),
                        checker="portfolio")
    jobs, _ = generate_scenarios(spec)

    # The checker choice is part of the verdict cache identity: the same
    # grid swept by a different checker can never collide on disk.
    exhaustive_jobs, _ = generate_scenarios(
        ScenarioSpec(depths=(4,), holes=(0, 1), max_states=HORIZON,
                     properties=("safeness", "deadlock", "exclusion"),
                     checker="exhaustive"))
    for portfolio_job, exhaustive_job in zip(jobs, exhaustive_jobs):
        assert options_digest(portfolio_job.options()) != \
            options_digest(exhaustive_job.options())

    rows = []
    records = {}
    for job in jobs:
        payload = job.run()
        records[job.job_id] = {record["property"]: record
                               for record in payload["verdict"]["properties"]}
        for record in payload["verdict"]["properties"]:
            rows.append({
                "scenario": job.job_id, "property": record["property"],
                "holds": record["holds"], "method": record["method"] or "-",
            })
    print_table("portfolio campaign on a beyond-horizon grid (per-property "
                "methods)", rows)

    clean = records["pipeline-d4-p1-h0"]
    assert clean["safeness"]["holds"] is True
    assert clean["exclusion"]["holds"] is True
    assert clean["safeness"]["method"] == "inductive"
    assert clean["exclusion"]["method"] == "inductive"
    holey = records["pipeline-d4-p1-h1"]
    assert holey["deadlock"]["holds"] is False
    assert holey["deadlock"]["method"] == "walk"
    assert holey["deadlock"]["trace"]
