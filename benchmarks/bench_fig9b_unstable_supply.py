"""E7 / Fig. 9b: power consumption under an unstable supply voltage.

Regenerates the freeze/recovery experiment: the reconfigurable pipeline (all
18 stages active) starts a computation at 0.5 V; the supply is then ramped
down to the freeze voltage (0.34 V on silicon), held there -- the chip makes
no progress and draws only leakage -- and raised back, after which the
computation resumes and completes correctly.
"""

from repro.chip.testbench import unstable_supply_experiment

from .conftest import print_table


def test_fig9b_unstable_supply(benchmark):
    result = unstable_supply_experiment()
    trace = result["trace"]
    # Down-sample the power trace for printing.
    rows = [
        {"time_s": row["time_s"], "voltage_V": row["voltage_v"],
         "power_uW": row["power_uw"], "items_done": row["items_done"]}
        for row in trace[:: max(1, len(trace) // 20)]
    ]
    print_table("Fig. 9b -- power consumption under a supply dip to 0.34 V", rows)
    print("completed: {}, total time {:.1f} s, frozen for {:.1f} s".format(
        result["completed"], result["computation_time_s"], result["frozen_interval_s"]))

    # The computation completes despite the dip (resilience claim).
    assert result["completed"]
    # There is a genuine frozen interval during which no items are processed.
    assert result["frozen_interval_s"] > 0
    frozen = [row for row in trace if row["voltage_v"] <= result["freeze_voltage"]]
    assert frozen
    items_during_freeze = {row["items_done"] for row in frozen}
    assert len(items_during_freeze) <= 2  # essentially no progress while frozen

    # While frozen the chip draws only leakage: orders of magnitude below the
    # active power at 0.5 V (the up/down spikes of the paper's figure).
    active_power = max(row["power_uw"] for row in trace)
    frozen_power = max(row["power_uw"] for row in frozen)
    assert frozen_power < active_power / 20

    benchmark(lambda: unstable_supply_experiment(items=1_000_000, time_step=0.25))
