"""E5 / Section III-A: formal verification of the (reconfigurable) OPE pipeline.

The paper reports that "several cases of deadlock and non-persistent
behaviour (mostly due to incorrect initialisation of control registers) were
identified, analysed and corrected during the design process".  This bench
runs that evaluation as a **campaign** (:mod:`repro.campaign`): a scenario
grid over pipeline depth x injected configuration holes, fanned out over
worker processes.  Correctly initialised scenarios pass every check; every
mis-initialised one is caught with a deadlock counterexample trace.
"""

import os
import time

from repro.campaign import ScenarioSpec, generate_scenarios, run_campaign
from repro.pipelines.generic import build_generic_pipeline
from repro.verification.verifier import Verifier

from .conftest import print_table


def _run_campaign():
    spec = ScenarioSpec(depths=(2, 3), holes=(0, 1), max_states=500000)
    jobs, skipped = generate_scenarios(spec)
    return run_campaign(jobs, parallelism=2, timeout=300,
                        spec=spec, skipped=skipped)


def _time_engines():
    """Time state-space construction + checks on both reachability engines.

    The DFS-to-Petri-net translation is identical for both engines and is
    built outside the timed region, so the comparison isolates the
    explore-dominated work the engines actually differ on.
    """
    timings = {}
    for engine in ("explicit", "compiled"):
        best = float("inf")
        for _ in range(3):
            pipeline = build_generic_pipeline(2, static_prefix_stages=1, name="ope_ok")
            verifier = Verifier(pipeline.dfs, max_states=500000, engine=engine)
            verifier.net  # translate up front
            start = time.perf_counter()
            summary = verifier.verify_all(include_persistence=False)
            best = min(best, time.perf_counter() - start)
            assert summary.passed
        timings[engine] = best
    return timings


def test_verification_of_ope_pipeline_configurations(benchmark):
    report = _run_campaign()
    print_table("Section III-A -- verification campaign over OPE configurations",
                report.rows())

    # Every scenario ran to completion and behaved as the grid predicted:
    # clean configurations verify, hole configurations deadlock.
    assert report.ok
    assert all(result.status == "ok" for result in report.results)
    hole_results = [result for result in report.results
                    if result.job.expect == "deadlock"]
    clean_results = [result for result in report.results
                     if result.job.expect == "pass"]
    assert hole_results and clean_results
    for result in clean_results:
        assert result.verdict["passed"]
    for result in hole_results:
        deadlock = next(record for record in result.verdict["properties"]
                        if record["property"] == "deadlock")
        assert deadlock["holds"] is False
        assert deadlock["trace"]
        print("{}: counterexample trace length {}".format(
            result.job.job_id, len(deadlock["trace"])))
    # The invalid grid point (a hole in a 2-stage pipeline leaves no stage
    # behind it) is reported, not silently dropped.
    assert len(report.skipped) == 1

    timings = _time_engines()
    speedup = timings["explicit"] / timings["compiled"]
    print_table("reachability engine comparison (verify_all, 2-stage OPE)", [
        {"engine": "explicit (hash-dict multisets)", "seconds": timings["explicit"]},
        {"engine": "compiled (bitmask states)", "seconds": timings["compiled"]},
        {"engine": "speedup", "seconds": speedup},
    ])

    # The compiled engine is the point of this subsystem: it must stay well
    # ahead of the explicit explorer on explore-dominated workloads.  Local
    # best-of-3 runs measure 11-14x; the floor is relaxed on shared CI
    # runners, where the ~10ms compiled timing absorbs scheduler noise.
    assert speedup >= (3.0 if os.environ.get("CI") else 5.0)

    benchmark(_run_campaign)
