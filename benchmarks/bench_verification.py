"""E5 / Section III-A: formal verification of the (reconfigurable) OPE pipeline.

The paper reports that "several cases of deadlock and non-persistent
behaviour (mostly due to incorrect initialisation of control registers) were
identified, analysed and corrected during the design process".  This bench
verifies a correctly initialised pipeline (all checks pass) and a
mis-initialised one (a configuration "hole"), for which the deadlock is found
together with a counterexample trace.
"""

import os
import time

from repro.pipelines.control import set_loop_value
from repro.pipelines.generic import build_generic_pipeline
from repro.verification.verifier import Verifier

from .conftest import print_table


def _verify_correct():
    pipeline = build_generic_pipeline(2, static_prefix_stages=1, name="ope_ok")
    verifier = Verifier(pipeline.dfs, max_states=500000)
    return verifier, verifier.verify_all(include_persistence=False)


def _verify_broken():
    pipeline = build_generic_pipeline(3, static_prefix_stages=1, name="ope_hole")
    # Exclude the middle stage only: an invalid (non-prefix) configuration.
    for loop in pipeline.stage(2).control_loops:
        set_loop_value(pipeline.dfs, loop, False)
    verifier = Verifier(pipeline.dfs, max_states=500000)
    return verifier, verifier.verify_deadlock_freedom()


def _time_engines():
    """Time state-space construction + checks on both reachability engines.

    The DFS-to-Petri-net translation is identical for both engines and is
    built outside the timed region, so the comparison isolates the
    explore-dominated work the engines actually differ on.
    """
    timings = {}
    for engine in ("explicit", "compiled"):
        best = float("inf")
        for _ in range(3):
            pipeline = build_generic_pipeline(2, static_prefix_stages=1, name="ope_ok")
            verifier = Verifier(pipeline.dfs, max_states=500000, engine=engine)
            verifier.net  # translate up front
            start = time.perf_counter()
            summary = verifier.verify_all(include_persistence=False)
            best = min(best, time.perf_counter() - start)
            assert summary.passed
        timings[engine] = best
    return timings


def test_verification_of_ope_pipeline_configurations(benchmark):
    verifier_ok, summary = _verify_correct()
    verifier_bad, deadlock = _verify_broken()

    rows = [
        {"model": "correctly initialised (2 stages)", "states": verifier_ok.state_count,
         "result": "all checks pass" if summary.passed else "FAILED"},
        {"model": "mis-initialised hole (3 stages)", "states": verifier_bad.state_count,
         "result": "deadlock found" if deadlock.holds is False else "missed"},
    ]
    print_table("Section III-A -- verification of OPE pipeline configurations", rows)
    if deadlock.witnesses:
        print("counterexample trace length: {}".format(len(deadlock.first_trace())))

    timings = _time_engines()
    speedup = timings["explicit"] / timings["compiled"]
    print_table("reachability engine comparison (verify_all, 2-stage OPE)", [
        {"engine": "explicit (hash-dict multisets)", "seconds": timings["explicit"]},
        {"engine": "compiled (bitmask states)", "seconds": timings["compiled"]},
        {"engine": "speedup", "seconds": speedup},
    ])

    assert summary.passed
    assert deadlock.holds is False
    assert deadlock.first_trace()
    # The compiled engine is the point of this subsystem: it must stay well
    # ahead of the explicit explorer on explore-dominated workloads.  Local
    # best-of-3 runs measure 11-14x; the floor is relaxed on shared CI
    # runners, where the ~10ms compiled timing absorbs scheduler noise.
    assert speedup >= (3.0 if os.environ.get("CI") else 5.0)

    benchmark(lambda: _verify_correct()[1])
