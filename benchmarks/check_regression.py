#!/usr/bin/env python
"""Bench-regression gate: compare fresh ``BENCH_*.json`` against baselines.

CI runs the benchmarks with ``BENCH_JSON=<dir>`` (see
``benchmarks/conftest.py``), then calls this script to compare the fresh
results against the committed baselines in ``benchmarks/baselines/``.

Two metrics are gated, one per bench file.  Absolute seconds are
meaningless across runner generations, so each gate normalises a timing by
a second timing measured in the same process on the same machine:

* the **compiled-engine verify path** (``bench_verification``)::

      relative = compiled_seconds / explicit_seconds

* the **portfolio verify path** (``bench_checkers``)::

      relative = portfolio_seconds / exhaustive_seconds

A gate fails when the fresh relative cost exceeds the baseline's by more
than its tolerance: ``--tolerance`` (default 0.30, i.e. a >30% slowdown of
the gated path relative to its in-process reference) unless the gate
declares its own in :data:`GATES` -- the portfolio ratio divides two small
timings and carries a wider 0.60 band.

Exit codes: 0 = within tolerance, 1 = regression detected, 2 = missing or
malformed data.
"""

import argparse
import json
import os
import sys

#: The gated metrics: a bench file matches a gate when it contains the
#: gate's table with both the reference and the gated row.  A gate's
#: optional "tolerance" overrides the CLI default (the portfolio and
#: semiflow ratios divide small timings, so they carry wider bands; the
#: depth-scaling slopes are a deterministic model output, so theirs is
#: tight), its optional "value" names the gated column (default "seconds"),
#: and "two_sided" also fails on drift *below* the baseline band.
GATES = [
    {
        "table": "reachability engine comparison",
        "key": "engine",
        "reference": "explicit",
        "gated": "compiled",
        "label": "compiled verify path",
    },
    {
        "table": "checker portfolio comparison",
        "key": "checker",
        "reference": "exhaustive",
        "gated": "portfolio",
        "label": "portfolio verify path",
        "tolerance": 0.60,
    },
    {
        "table": "sharded exploration comparison",
        "key": "mode",
        "reference": "sequential",
        "gated": "sharded-4",
        "label": "sharded exploration path",
        "tolerance": 0.60,
    },
    {
        # The batch/sequential seconds ratio *is* the (inverse) throughput
        # ratio: a >30% drop of the batch engine's states/sec relative to
        # the in-process sequential reference fails this gate.
        "table": "batch exploration comparison",
        "key": "engine",
        "reference": "sequential",
        "gated": "batch",
        "label": "batch exploration throughput",
    },
    {
        # The price of spilling: disk-backed seconds over in-RAM seconds,
        # both measured in fresh subprocesses on the same machine.  The
        # memmap engine is expected to sit within a few percent of RAM;
        # the band allows I/O jitter, not a structural slowdown.
        "table": "out-of-core exploration comparison",
        "key": "mode",
        "reference": "in-ram",
        "gated": "disk-backed",
        "label": "out-of-core exploration throughput",
        "tolerance": 0.60,
    },
    {
        # The memory win of spilling: disk-backed peak RSS over in-RAM
        # peak RSS.  The bench also asserts the absolute ceiling (in-RAM
        # exceeds it, disk-backed stays under); this gate catches the
        # *ratio* eroding -- e.g. a level-streaming regression that keeps
        # the whole graph resident despite the memmap backing.
        "table": "out-of-core exploration comparison",
        "key": "mode",
        "reference": "in-ram",
        "gated": "disk-backed",
        "label": "out-of-core peak RSS",
        "value": "peak_rss_kb",
        "tolerance": 0.30,
    },
    {
        # The vectorised walk swarm: per-kstep firing cost of the 8k-row
        # swarm over the in-process scalar walker.  The bench itself pins
        # the absolute acceptance floor (>=5x); this gate catches the
        # *ratio* eroding -- e.g. a per-pass Python detour creeping into
        # the hot loop -- against the committed baseline (~13x).
        "table": "vectorised walk throughput",
        "key": "backend",
        "reference": "scalar",
        "gated": "swarm-8k",
        "label": "vectorised walk throughput",
        "value": "seconds_per_kstep",
        "tolerance": 0.60,
    },
    {
        # The price of crash-safe exploration: checkpointed seconds over
        # the plain in-RAM run, both in-process on the same machine.  The
        # bench pins the absolute ceiling; this gate catches the overhead
        # ratio creeping up -- e.g. a whole-mapping msync sneaking back
        # into the per-level path.
        "table": "checkpointed exploration comparison",
        "key": "mode",
        "reference": "no-checkpoint",
        "gated": "checkpointed",
        "label": "checkpointed exploration overhead",
        "tolerance": 0.30,
    },
    {
        "table": "semiflow cache",
        "key": "mode",
        "reference": "cold",
        "gated": "warm",
        "label": "semiflow cache warm hit",
        "tolerance": 3.00,
    },
    {
        # The service's content-addressed reuse: a warm key answered at
        # submit time vs a cold pool execution.  Both sides divide small
        # timings, so the band is wide -- the gate exists to catch the warm
        # path regressing toward a re-verification, not millisecond drift.
        "table": "service result reuse",
        "key": "mode",
        "reference": "cold",
        "gated": "warm",
        "label": "service warm-key reuse",
        "tolerance": 3.00,
    },
    {
        # The no-solver answer of the SMT proving tier: a cold
        # minimal-siphon enumeration plus trap/semiflow witnesses, against
        # the exhaustive engine exploring the same net in-process.  Both
        # sides are tens of milliseconds, so the band is wide; the gate
        # catches the enumeration regressing toward its exponential corner.
        "table": "structural deadlock proof",
        "key": "method",
        "reference": "exhaustive",
        "gated": "siphon-trap",
        "label": "siphon/trap structural proof",
        "tolerance": 3.00,
    },
    {
        # The SMT-LIB unrolling must stay linear in the depth: the
        # depth-16/depth-4 encoding-seconds ratio sits near 4 and doubling
        # it means a superlinear encoder.
        "table": "bmc unroll encoding",
        "key": "depth",
        "reference": "depth-4",
        "gated": "depth-16",
        "label": "bmc unroll encoding scaling",
        "tolerance": 1.00,
    },
    {
        "table": "time slope vs voltage",
        "key": "voltage_V",
        "reference": "1.6",
        "gated": "0.5",
        "label": "depth-scaling voltage slopes",
        "value": "slope_s_per_stage",
        "tolerance": 0.05,
        # A deterministic model output must not drift in either direction:
        # a collapsed 0.5 V slope is as much a regression as an inflated one.
        "two_sided": True,
    },
]


def load_bench(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def gate_seconds(bench, gate):
    """Extract ``(reference, gated)`` metric values for *gate*, or ``None``."""
    value_key = gate.get("value", "seconds")
    for table in bench.get("tables", []):
        if gate["table"] not in table.get("title", ""):
            continue
        seconds = {}
        for row in table.get("rows", []):
            name = str(row.get(gate["key"], ""))
            if name.startswith(gate["reference"]):
                seconds["reference"] = float(row[value_key])
            elif name.startswith(gate["gated"]):
                seconds["gated"] = float(row[value_key])
        if "reference" in seconds and "gated" in seconds:
            return seconds["reference"], seconds["gated"]
    return None


def compare(fresh_path, baseline_path, tolerance):
    """Compare one bench file; return report lines and a regression flag."""
    fresh_bench = load_bench(fresh_path)
    baseline_bench = load_bench(baseline_path)
    lines = ["{}:".format(os.path.basename(fresh_path))]
    regressed = False
    gates_applied = 0
    ratio_line = "  {:<9} {} = {:.4f} ({:.4g}s / {:.4g}s)"
    verdict_line = "  {} slowdown: {:+.1%} (tolerance {:+.0%}) -> {}"
    missing = "error: baseline {} has a '{}' table but the fresh result {} does not"
    for gate in GATES:
        baseline = gate_seconds(baseline_bench, gate)
        if baseline is None:
            continue
        fresh = gate_seconds(fresh_bench, gate)
        if fresh is None:
            raise SystemExit(missing.format(baseline_path, gate["table"], fresh_path))
        gates_applied += 1
        gate_tolerance = gate.get("tolerance", tolerance)
        base_ref, base_gated = baseline
        fresh_ref, fresh_gated = fresh
        base_relative = base_gated / base_ref
        fresh_relative = fresh_gated / fresh_ref
        slowdown = fresh_relative / base_relative - 1.0
        bad = slowdown > gate_tolerance
        if gate.get("two_sided") and -slowdown > gate_tolerance:
            bad = True
        regressed = regressed or bad
        status = "REGRESSION" if bad else "ok"
        name = "{}/{}".format(gate["gated"], gate["reference"])
        row = ratio_line.format("baseline:", name, base_relative, base_gated, base_ref)
        lines.append(row)
        row = ratio_line.format("fresh:", name, fresh_relative, fresh_gated, fresh_ref)
        lines.append(row)
        verdict = verdict_line.format(gate["label"], slowdown, gate_tolerance, status)
        lines.append(verdict)
    if gates_applied == 0:
        tables = " / ".join("'{}'".format(gate["table"]) for gate in GATES)
        raise SystemExit("error: no gated table ({}) in {}".format(tables, baseline_path))
    return lines, regressed


def main(argv=None):
    default_baselines = os.path.join(os.path.dirname(__file__), "baselines")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        required=True,
        metavar="DIR",
        help="directory of freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--baselines",
        default=default_baselines,
        metavar="DIR",
        help="directory of committed baselines",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative slowdown (default 0.30)",
    )
    args = parser.parse_args(argv)

    if not os.path.isdir(args.fresh):
        print("error: fresh directory {!r} does not exist".format(args.fresh))
        return 2
    names = sorted(os.listdir(args.baselines)) if os.path.isdir(args.baselines) else []
    baselines = [n for n in names if n.startswith("BENCH_") and n.endswith(".json")]
    if not baselines:
        print("error: no BENCH_*.json baselines in {!r}".format(args.baselines))
        return 2

    regressed = False
    compared = 0
    for name in baselines:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            print("warning: no fresh result for baseline {} -- skipped".format(name))
            continue
        try:
            lines, bad = compare(fresh_path, os.path.join(args.baselines, name), args.tolerance)
        except SystemExit as error:
            print(error)
            return 2
        print("\n".join(lines))
        compared += 1
        regressed = regressed or bad
    if compared == 0:
        print("error: no baseline had a matching fresh result")
        return 2
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
