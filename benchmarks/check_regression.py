#!/usr/bin/env python
"""Bench-regression gate: compare fresh ``BENCH_*.json`` against baselines.

CI runs the benchmarks with ``BENCH_JSON=<dir>`` (see
``benchmarks/conftest.py``), then calls this script to compare the fresh
results against the committed baselines in ``benchmarks/baselines/``.

The gated metric is the **compiled-engine verify path**.  Absolute seconds
are meaningless across runner generations, so the gate normalises the
compiled ``verify_all`` timing by the explicit-engine timing measured in the
same process on the same machine::

    relative = compiled_seconds / explicit_seconds

and fails when the fresh relative cost exceeds the baseline's by more than
``--tolerance`` (default 0.30, i.e. a >30% slowdown of the compiled engine
relative to the explicit explorer).

Exit codes: 0 = within tolerance, 1 = regression detected, 2 = missing or
malformed data.
"""

import argparse
import json
import os
import sys

ENGINE_TABLE = "reachability engine comparison"


def load_bench(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def engine_seconds(bench, path):
    """Extract ``(explicit, compiled)`` seconds from a bench payload."""
    for table in bench.get("tables", []):
        if ENGINE_TABLE not in table.get("title", ""):
            continue
        seconds = {}
        for row in table.get("rows", []):
            engine = str(row.get("engine", ""))
            if engine.startswith("explicit"):
                seconds["explicit"] = float(row["seconds"])
            elif engine.startswith("compiled"):
                seconds["compiled"] = float(row["seconds"])
        if "explicit" in seconds and "compiled" in seconds:
            return seconds["explicit"], seconds["compiled"]
    message = "error: no '{}' table with explicit/compiled rows in {}"
    raise SystemExit(message.format(ENGINE_TABLE, path))


def compare(fresh_path, baseline_path, tolerance):
    """Compare one bench file; return report lines and a regression flag."""
    fresh_explicit, fresh_compiled = engine_seconds(load_bench(fresh_path), fresh_path)
    base_explicit, base_compiled = engine_seconds(load_bench(baseline_path), baseline_path)
    fresh_relative = fresh_compiled / fresh_explicit
    base_relative = base_compiled / base_explicit
    slowdown = fresh_relative / base_relative - 1.0
    regressed = slowdown > tolerance
    status = "REGRESSION" if regressed else "ok"
    baseline_line = "  baseline: compiled/explicit = {:.4f} ({:.4g}s / {:.4g}s)"
    fresh_line = "  fresh:    compiled/explicit = {:.4f} ({:.4g}s / {:.4g}s)"
    verdict_line = "  compiled verify path slowdown: {:+.1%} (tolerance {:+.0%}) -> {}"
    lines = [
        "{}:".format(os.path.basename(fresh_path)),
        baseline_line.format(base_relative, base_compiled, base_explicit),
        fresh_line.format(fresh_relative, fresh_compiled, fresh_explicit),
        verdict_line.format(slowdown, tolerance, status),
    ]
    return lines, regressed


def main(argv=None):
    default_baselines = os.path.join(os.path.dirname(__file__), "baselines")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        required=True,
        metavar="DIR",
        help="directory of freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--baselines",
        default=default_baselines,
        metavar="DIR",
        help="directory of committed baselines",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative slowdown (default 0.30)",
    )
    args = parser.parse_args(argv)

    if not os.path.isdir(args.fresh):
        print("error: fresh directory {!r} does not exist".format(args.fresh))
        return 2
    names = sorted(os.listdir(args.baselines)) if os.path.isdir(args.baselines) else []
    baselines = [n for n in names if n.startswith("BENCH_") and n.endswith(".json")]
    if not baselines:
        print("error: no BENCH_*.json baselines in {!r}".format(args.baselines))
        return 2

    regressed = False
    compared = 0
    for name in baselines:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            print("warning: no fresh result for baseline {} -- skipped".format(name))
            continue
        try:
            lines, bad = compare(fresh_path, os.path.join(args.baselines, name), args.tolerance)
        except SystemExit as error:
            print(error)
            return 2
        print("\n".join(lines))
        compared += 1
        regressed = regressed or bad
    if compared == 0:
        print("error: no baseline had a matching fresh result")
        return 2
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
