#!/usr/bin/env python3
"""The ordinal pattern encoding (OPE) accelerator case study (Section III-IV).

Builds a (small) reconfigurable OPE pipeline as a DFS model, verifies it,
maps it onto the NCL-D component library, and then exercises the evaluation
chip model in random mode: an on-chip LFSR generates the stimulus, the
accumulator folds all produced rank lists into a checksum, and the checksum
is validated against the behavioural OPE model -- exactly the flow the paper
uses for its silicon measurements.

Run with::

    python examples/ope_accelerator.py
"""

from repro.chip.top import ChipConfig, ChipMode, OpeChip
from repro.circuits.mapping import SyncStyle, mapping_summary
from repro.ope.circuit import ope_netlist
from repro.ope.pipeline import build_reconfigurable_ope_pipeline
from repro.ope.reference import paper_example_table
from repro.verification.verifier import Verifier


def main():
    # The worked example of Section III-A.
    print("OPE rank lists for stream (3, 1, 4, 1, 5, 9, 2, 6), window size 6:")
    for row in paper_example_table():
        print("  window {index}: {window} -> {rank_list}".format(**row))

    # A 4-stage reconfigurable OPE pipeline (the chip has 18 stages; a small
    # instance keeps verification interactive).
    pipeline, configuration = build_reconfigurable_ope_pipeline(stages=4, depth=4,
                                                                min_depth=2)
    print("\nReconfigurable OPE pipeline:", pipeline)
    print("Supported depths:", configuration.supported_depths())

    verifier = Verifier(pipeline.dfs, max_states=500000)
    print("Deadlock freedom:", verifier.verify_deadlock_freedom().holds)
    print("Control-token mismatch freedom:", verifier.verify_control_mismatch().holds)

    netlist = ope_netlist(pipeline, sync_style=SyncStyle.DAISY_CHAIN)
    summary = mapping_summary(netlist)
    print("Mapped onto {} component instances ({:.0f} um^2)".format(
        summary["instances"], summary["area_um2"]))

    # The evaluation chip in random mode (functional checksum validation plus
    # analytic time/energy figures from the calibrated silicon model).
    chip = OpeChip()
    chip.set_mode(ChipMode.RANDOM)
    chip.set_config(ChipConfig.RECONFIGURABLE)
    print("\nRandom-mode runs on the evaluation chip (seed 0xACE1):")
    print("  {:>6} {:>12} {:>12} {:>10} {:>12}".format(
        "depth", "checksum", "golden", "match", "time@1.2V"))
    for depth in (6, 12, 18):
        chip.set_depth(depth)
        run = chip.run_random(seed=0xACE1, count=2000)
        golden = chip.behavioural_checksum(seed=0xACE1, count=2000)
        measurement = chip.measure(16_000_000, 1.2)
        print("  {:>6} {:>12} {:>12} {:>10} {:>10.3f} s".format(
            depth, "0x%08X" % run["checksum"], "0x%08X" % golden,
            str(run["checksum"] == golden), measurement.computation_time_s))

    static = chip.measure(16_000_000, 1.2, config=ChipConfig.STATIC)
    reconf = chip.measure(16_000_000, 1.2, config=ChipConfig.RECONFIGURABLE, depth=18)
    print("\nCost of reconfigurability at 18 stages, 1.2 V: "
          "+{:.0%} time, +{:.1%} energy".format(
              reconf.computation_time_s / static.computation_time_s - 1,
              reconf.consumed_energy_j / static.consumed_energy_j - 1))


if __name__ == "__main__":
    main()
