#!/usr/bin/env python3
"""Voltage scaling and resilience experiments (Fig. 9a and Fig. 9b).

Sweeps the supply voltage of the static and reconfigurable OPE pipelines over
the 0.5-1.6 V range used on the test bench (normalising to the static
pipeline at the nominal 1.2 V), and then reproduces the unstable-supply
experiment: the supply is ramped down to the freeze voltage mid-computation
and back up, and the chip completes the run correctly once power recovers.

Run with::

    python examples/voltage_resilience.py
"""

from repro.chip.testbench import unstable_supply_experiment, voltage_sweep_experiment


def main():
    sweep = voltage_sweep_experiment(voltages=(0.5, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6),
                                     items=16_000_000)
    print("Reference point (static pipeline, 1.2 V, 16 M items): "
          "{:.3g} s, {:.3g} mJ".format(sweep["reference_time_s"],
                                       sweep["reference_energy_j"] * 1e3))
    print("\nFig. 9a -- normalised computation time and consumed energy:")
    print("  {:>6} {:>12} {:>12} {:>14} {:>14}".format(
        "V", "t_static", "t_reconf", "E_static", "E_reconf"))
    for row in sweep["rows"]:
        print("  {:>6.1f} {:>12.3g} {:>12.3g} {:>14.3g} {:>14.3g}".format(
            row["voltage"], row["static_time_norm"], row["reconfigurable_time_norm"],
            row["static_energy_norm"], row["reconfigurable_energy_norm"]))

    print("\nFig. 9b -- power trace while the supply dips to the freeze voltage:")
    result = unstable_supply_experiment()
    trace = result["trace"]
    step = max(1, len(trace) // 25)
    print("  {:>8} {:>10} {:>12} {:>12}".format("t [s]", "V [V]", "P [uW]", "items"))
    for row in trace[::step]:
        print("  {:>8.1f} {:>10.2f} {:>12.2f} {:>12}".format(
            row["time_s"], row["voltage_v"], row["power_uw"], row["items_done"]))
    print("\nCompleted: {}   total time: {:.1f} s   frozen interval: {:.1f} s".format(
        result["completed"], result["computation_time_s"], result["frozen_interval_s"]))


if __name__ == "__main__":
    main()
