#!/usr/bin/env python3
"""SDFS vs DFS on the conditional-computation example (Fig. 1 of the paper).

The SDFS (static) pipeline always evaluates the expensive ``comp`` function;
the DFS pipeline bypasses it whenever the cheap predicate ``cond`` yields
False.  This example measures the average time per item of both models with
the timed token simulator while sweeping the fraction of "expensive" items,
and verifies the isolation property of the bypass (the comp registers never
see a token on the False path).

Run with::

    python examples/conditional_pipeline.py
"""

from repro.dfs.examples import conditional_comp_dfs, conditional_comp_sdfs
from repro.performance.timed import TimedDfsSimulator
from repro.verification.verifier import Verifier


def fraction_policy(fraction):
    """A choice policy that makes ``cond`` yield True for *fraction* of the items."""
    def policy(node, index):
        return (index % 10) < round(fraction * 10)
    return policy


def main():
    comp_stages, comp_delay, tokens = 3, 8.0, 40

    sdfs = conditional_comp_sdfs(comp_stages=comp_stages, comp_delay=comp_delay)
    sdfs_cycle = TimedDfsSimulator(sdfs, seed=1).run("out", token_goal=tokens).mean_cycle_time
    print("SDFS (static) cycle time: {:.2f} time units per item "
          "(independent of the data)".format(sdfs_cycle))

    print("\nDFS (reconfigurable) cycle time vs fraction of expensive items:")
    print("  {:>12} {:>12} {:>10}".format("true_frac", "cycle_time", "speedup"))
    for fraction in (0.0, 0.2, 0.5, 0.8, 1.0):
        dfs = conditional_comp_dfs(comp_stages=comp_stages, comp_delay=comp_delay)
        run = TimedDfsSimulator(dfs, choice_policy=fraction_policy(fraction),
                                seed=1).run("out", token_goal=tokens)
        print("  {:>12.1f} {:>12.2f} {:>9.2f}x".format(
            fraction, run.mean_cycle_time, sdfs_cycle / run.mean_cycle_time))

    # Verification: on the False path the comp registers never hold a token
    # while the control register carries False -- the bypass is real.
    dfs = conditional_comp_dfs(comp_stages=1)
    verifier = Verifier(dfs)
    isolation = verifier.verify_custom('$"M_r1_1" & $"Mf_ctrl_1"',
                                       property_name="bypass isolation")
    print("\nBypass isolation property:", "holds" if isolation.holds else "VIOLATED")
    print(verifier.verify_all(include_persistence=False).report())


if __name__ == "__main__":
    main()
