#!/usr/bin/env python3
"""Quickstart: model, verify, analyse and export a reconfigurable pipeline.

This walks the full tool flow of the paper on its motivating example
(Fig. 1b): a cheap predicate ``cond`` steers a control register that either
routes a token through the expensive ``comp`` pipeline or bypasses it with a
push/pop register pair.

Run with::

    python examples/quickstart.py
"""

from repro.dfs.examples import conditional_comp_dfs
from repro.dfs.serialization import dfs_to_json
from repro.dfs.simulation import DfsSimulator
from repro.dfs.translation import to_petri_net
from repro.dfs.validation import validate_structure
from repro.circuits.mapping import map_dfs_to_netlist, mapping_summary
from repro.circuits.verilog import to_verilog
from repro.performance.analyzer import PerformanceAnalyzer
from repro.verification.verifier import Verifier


def main():
    # 1. Build the DFS model of the conditional-computation pipeline.
    dfs = conditional_comp_dfs(comp_stages=2)
    print("Model:", dfs)
    print("Node types:", {name: dfs.kind(name).value for name in sorted(dfs.nodes)})

    # 2. Structural validation (quick checks before formal verification).
    issues = validate_structure(dfs)
    print("\nStructural issues:", [issue.message for issue in issues] or "none")

    # 3. Interactive (here: random) token-game simulation.
    simulator = DfsSimulator(dfs)
    simulator.run_random(200, seed=1)
    print("\nAfter 200 random events:", simulator.state.describe())
    print("Tokens delivered at 'out':", simulator.tokens_produced("out"))

    # 4. Formal verification through the Petri-net semantics.
    net = to_petri_net(dfs)
    print("\nPetri-net translation:", net)
    verifier = Verifier(dfs)
    print(verifier.verify_all(include_persistence=False).report())

    # 5. Performance analysis (cycle throughput, bottlenecks).
    report = PerformanceAnalyzer(dfs).analyse()
    print("\n" + report.render())

    # 6. Technology mapping onto NCL-D components and Verilog export.
    netlist = map_dfs_to_netlist(dfs)
    summary = mapping_summary(netlist)
    print("\nMapped netlist: {} instances, {:.0f} um^2, {:.0f} nW leakage".format(
        summary["instances"], summary["area_um2"], summary["leakage_nw"]))
    verilog = to_verilog(netlist)
    print("Verilog netlist: {} lines (first 5 shown)".format(len(verilog.splitlines())))
    print("\n".join(verilog.splitlines()[:5]))

    # 7. The model itself can be saved as a JSON document.
    print("\nSerialised model is {} bytes of JSON".format(len(dfs_to_json(dfs))))


if __name__ == "__main__":
    main()
